"""A PCC-like utility-gradient protocol (the Table 2 comparator).

PCC (Dong et al., NSDI 2015) divides time into monitor intervals, observes
the loss rate achieved at a tested sending rate, computes a *utility*, and
moves its rate in the direction of higher utility. Its default
("Allegro") utility is loss-based::

    u(x, L) = x * (1 - L) * S(L) - x * L
    S(L)    = 1 / (1 + exp(alpha * (L - tolerance)))

with ``tolerance ~ 0.05`` and a steep sigmoid: utility collapses once loss
exceeds ~5%, so PCC pushes until the loss rate approaches the tolerance —
far past the point where TCP has already backed off. That is why PCC is
strictly more aggressive than ``MIMD(1.01, 0.99)`` (the paper's phrasing)
and why the paper builds Robust-AIMD as the friendlier alternative.

Our rendering maps PCC's rate control onto the fluid model's windows: each
time step is one monitor interval; the sender alternates a probe-up and a
probe-down interval around its base window, compares the two utilities and
moves the base window multiplicatively toward the winner (amplitude
growing with consecutive same-direction moves, like PCC's confidence
amplification). Deterministic, per the paper's model requirements.
"""

from __future__ import annotations

import math
from enum import Enum

from repro.model.sender import Observation
from repro.protocols.base import Protocol, validate_in_range


class _Phase(Enum):
    PROBE_UP = "probe_up"
    PROBE_DOWN = "probe_down"


def allegro_utility(rate: float, loss: float, tolerance: float = 0.05,
                    sigmoid_alpha: float = 100.0) -> float:
    """PCC Allegro's loss-based utility for a monitor interval.

    ``rate`` is the sending rate (here: the window, since step length is
    one RTT), ``loss`` the observed loss rate.
    """
    if rate < 0:
        raise ValueError(f"rate must be non-negative, got {rate}")
    if not 0.0 <= loss <= 1.0:
        raise ValueError(f"loss must be in [0, 1], got {loss}")
    # Clamp the exponent so extreme loss values cannot overflow exp().
    exponent = min(700.0, max(-700.0, sigmoid_alpha * (loss - tolerance)))
    sigmoid = 1.0 / (1.0 + math.exp(exponent))
    return rate * (1.0 - loss) * sigmoid - rate * loss


class PccLike(Protocol):
    """Monitor-interval utility-gradient congestion control, PCC style.

    Parameters
    ----------
    probe:
        Relative probe amplitude (PCC uses 5%).
    step:
        Base multiplicative move per decision (amplified by consecutive
        same-direction wins, capped at ``max_amplifier``).
    tolerance, sigmoid_alpha:
        The Allegro utility's loss tolerance and sigmoid steepness.
    """

    loss_based = True

    def __init__(
        self,
        probe: float = 0.05,
        step: float = 0.01,
        tolerance: float = 0.05,
        sigmoid_alpha: float = 100.0,
        max_amplifier: int = 3,
    ) -> None:
        self.probe = validate_in_range("probe", probe, 0.0, 0.5, low_open=True)
        self.step = validate_in_range("step", step, 0.0, 0.5, low_open=True)
        self.tolerance = validate_in_range("tolerance", tolerance, 0.0, 1.0, low_open=True, high_open=True)
        if sigmoid_alpha <= 0:
            raise ValueError(f"sigmoid_alpha must be positive, got {sigmoid_alpha}")
        self.sigmoid_alpha = sigmoid_alpha
        if max_amplifier < 1:
            raise ValueError(f"max_amplifier must be >= 1, got {max_amplifier}")
        self.max_amplifier = max_amplifier
        self.reset()

    def reset(self) -> None:
        self._phase = _Phase.PROBE_UP
        self._base: float | None = None
        self._utility_up = 0.0
        self._last_direction = 0
        self._amplifier = 1

    def _utility(self, obs: Observation) -> float:
        return allegro_utility(
            obs.window, obs.loss_rate, self.tolerance, self.sigmoid_alpha
        )

    def next_window(self, obs: Observation) -> float:
        if self._base is None:
            # First observation: adopt the current window as the base and
            # begin the probe cycle with the up-probe.
            self._base = obs.window
            self._phase = _Phase.PROBE_UP
            return self._base * (1.0 + self.probe)

        if self._phase is _Phase.PROBE_UP:
            # The step just observed carried the up-probe.
            self._utility_up = self._utility(obs)
            self._phase = _Phase.PROBE_DOWN
            return self._base * (1.0 - self.probe)

        # The step just observed carried the down-probe: decide and move.
        utility_down = self._utility(obs)
        direction = 1 if self._utility_up > utility_down else -1
        if direction == self._last_direction:
            self._amplifier = min(self.max_amplifier, self._amplifier + 1)
        else:
            self._amplifier = 1
        self._last_direction = direction
        move = self.step * self._amplifier
        self._base *= (1.0 + move) if direction > 0 else (1.0 - move)
        self._phase = _Phase.PROBE_UP
        return self._base * (1.0 + self.probe)

    @property
    def name(self) -> str:
        return f"PCC-like(tol={self.tolerance:g})"
