"""Named protocol presets used throughout the paper's evaluation.

The paper's Emulab section experiments with the Linux-kernel protocols
TCP Reno (``AIMD(1, 0.5)``), TCP Cubic (``CUBIC(0.4, 0.8)``) and TCP
Scalable (``MIMD(1.01, 0.875)`` in some environments, ``AIMD(1, 0.875)``
in others); Table 2 uses ``Robust-AIMD(1, 0.8, 0.01)`` against PCC.
"""

from __future__ import annotations

from typing import Callable

from repro.protocols.aimd import AIMD
from repro.protocols.base import Protocol
from repro.protocols.binomial import BIN
from repro.protocols.cubic import CUBIC
from repro.protocols.mimd import MIMD, MimdPccBound
from repro.protocols.pcc import PccLike
from repro.protocols.robust_aimd import RobustAIMD
from repro.protocols.vegas import VegasLike


def reno() -> AIMD:
    """TCP Reno: ``AIMD(1, 0.5)`` — the TCP-friendliness reference (Metric VII)."""
    return AIMD(1.0, 0.5)


def cubic() -> CUBIC:
    """Linux-kernel TCP Cubic: ``CUBIC(0.4, 0.8)``."""
    return CUBIC(0.4, 0.8)


def scalable_mimd() -> MIMD:
    """TCP Scalable rendered as ``MIMD(1.01, 0.875)``."""
    return MIMD(1.01, 0.875)


def scalable_aimd() -> AIMD:
    """TCP Scalable rendered as ``AIMD(1, 0.875)`` (the other kernel variant)."""
    return AIMD(1.0, 0.875)


def robust_aimd_paper() -> RobustAIMD:
    """The Table 2 protocol: ``Robust-AIMD(1, 0.8, 0.01)``."""
    return RobustAIMD(1.0, 0.8, 0.01)


def pcc_like() -> PccLike:
    """The utility-gradient PCC stand-in with Allegro defaults."""
    return PccLike()


def pcc_bound() -> MimdPccBound:
    """The paper's aggressiveness lower bound for PCC: ``MIMD(1.01, 0.99)``."""
    return MimdPccBound()


def iiad() -> BIN:
    """Inverse-increase / additive-decrease: ``BIN(1, 1, 1, 0)``."""
    return BIN(1.0, 1.0, 1.0, 0.0)


def sqrt_binomial() -> BIN:
    """The SQRT binomial protocol: ``BIN(1, 0.5, 0.5, 0.5)``."""
    return BIN(1.0, 0.5, 0.5, 0.5)


def vegas() -> VegasLike:
    """The latency-avoiding comparator for Theorem 5."""
    return VegasLike()


EMULAB_PROTOCOLS: dict[str, Callable[[], Protocol]] = {
    "reno": reno,
    "cubic": cubic,
    "scalable": scalable_mimd,
}
"""The three kernel protocols of the paper's Section 5.1 validation."""


def emulab_suite() -> list[Protocol]:
    """Fresh instances of the Section 5.1 validation protocols."""
    return [factory() for factory in EMULAB_PROTOCOLS.values()]
