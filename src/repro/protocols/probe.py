"""Probe-and-hold — the Claim 1 counterexample protocol.

Claim 1 states that any loss-based protocol that is 0-loss (eventually
incurs no loss at all) cannot be alpha-fast-utilizing for any alpha > 0.
The paper motivates the claim with exactly this protocol: slowly increase
the rate until encountering loss for the first time, then back off
slightly and *hold forever*. From that point on it never loses a packet
(0-loss) and nearly fills the link, yet after arbitrarily long loss-free
periods it no longer increases — violating fast-utilization, which demands
renewed probing (and hence eventual loss) after every sufficiently long
quiet period.
"""

from __future__ import annotations

from repro.model.sender import Observation
from repro.protocols.base import Protocol, format_params, validate_in_range


class ProbeAndHold(Protocol):
    """Increase by ``a`` until the first loss; then hold at ``b *`` (window at loss)."""

    loss_based = True

    def __init__(self, a: float = 1.0, b: float = 0.9) -> None:
        if a <= 0:
            raise ValueError(f"probe increment a must be positive, got {a}")
        self.a = a
        self.b = validate_in_range("hold fraction b", b, 0.0, 1.0, low_open=True, high_open=True)
        self._hold_at: float | None = None

    def reset(self) -> None:
        self._hold_at = None

    @property
    def holding(self) -> bool:
        """Whether the protocol has seen its first loss and frozen its window."""
        return self._hold_at is not None

    def next_window(self, obs: Observation) -> float:
        if self._hold_at is not None:
            return self._hold_at
        if obs.loss_rate > 0.0:
            self._hold_at = obs.window * self.b
            return self._hold_at
        return obs.window + self.a

    @property
    def name(self) -> str:
        return f"Probe&Hold({format_params(self.a, self.b)})"
