"""String-spec protocol construction for CLIs and sweep configurations.

Specs look like the paper's own notation::

    AIMD(1, 0.5)
    MIMD(1.01, 0.875)
    BIN(1, 0.5, 1, 0)
    CUBIC(0.4, 0.8)
    Robust-AIMD(1, 0.8, 0.01)

Bare preset names (``reno``, ``cubic``, ``scalable``, ``pcc``, ...) are
also accepted. Third-party protocols can join via
:func:`register_protocol`.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.protocols import presets
from repro.protocols.aimd import AIMD
from repro.protocols.base import Protocol
from repro.protocols.binomial import BIN
from repro.protocols.cubic import CUBIC
from repro.protocols.dctcp import DCTCP
from repro.protocols.highspeed import HighSpeedTcp
from repro.protocols.ledbat import Ledbat
from repro.protocols.mimd import MIMD, MimdPccBound
from repro.protocols.pcc import PccLike
from repro.protocols.probe import ProbeAndHold
from repro.protocols.robust_aimd import RobustAIMD
from repro.protocols.vegas import VegasLike

_FAMILIES: dict[str, Callable[..., Protocol]] = {
    "aimd": AIMD,
    "mimd": MIMD,
    "bin": BIN,
    "cubic": CUBIC,
    "robust-aimd": RobustAIMD,
    "robustaimd": RobustAIMD,
    "pcc-like": PccLike,
    "vegas-like": VegasLike,
    "probe-and-hold": ProbeAndHold,
    "hstcp": HighSpeedTcp,
    "ledbat": Ledbat,
    "dctcp": DCTCP,
}

_PRESETS: dict[str, Callable[[], Protocol]] = {
    "reno": presets.reno,
    "cubic": presets.cubic,
    "scalable": presets.scalable_mimd,
    "scalable-aimd": presets.scalable_aimd,
    "robust-aimd": presets.robust_aimd_paper,
    "pcc": presets.pcc_like,
    "pcc-bound": MimdPccBound,
    "iiad": presets.iiad,
    "sqrt": presets.sqrt_binomial,
    "vegas": presets.vegas,
    "hstcp": HighSpeedTcp,
    "ledbat": Ledbat,
    "dctcp": DCTCP,
}

_SPEC_RE = re.compile(r"^\s*(?P<family>[A-Za-z&\-]+)\s*\(\s*(?P<args>[^)]*)\)\s*$")


def register_protocol(name: str, factory: Callable[..., Protocol]) -> None:
    """Register an additional protocol family under ``name`` (case-insensitive)."""
    key = name.strip().lower()
    if not key:
        raise ValueError("protocol name must be non-empty")
    _FAMILIES[key] = factory


def available_protocols() -> dict[str, list[str]]:
    """The currently-known family and preset names (for ``--help`` text)."""
    return {
        "families": sorted(_FAMILIES),
        "presets": sorted(_PRESETS),
    }


def make_protocol(spec: str) -> Protocol:
    """Build a protocol from a spec string or preset name.

    >>> make_protocol("AIMD(1, 0.5)").name
    'AIMD(1,0.5)'
    >>> make_protocol("reno").name
    'AIMD(1,0.5)'
    """
    match = _SPEC_RE.match(spec)
    if match is None:
        key = spec.strip().lower()
        if key in _PRESETS:
            return _PRESETS[key]()
        raise ValueError(
            f"unrecognized protocol spec {spec!r}; expected e.g. 'AIMD(1,0.5)' "
            f"or one of the presets {sorted(_PRESETS)}"
        )
    family = match.group("family").strip().lower()
    if family not in _FAMILIES:
        raise ValueError(
            f"unknown protocol family {match.group('family')!r}; "
            f"known families: {sorted(_FAMILIES)}"
        )
    args_text = match.group("args").strip()
    args: list[float] = []
    if args_text:
        for piece in args_text.split(","):
            try:
                args.append(float(piece))
            except ValueError as exc:
                raise ValueError(f"non-numeric parameter {piece!r} in spec {spec!r}") from exc
    return _FAMILIES[family](*args)
