"""Robust-AIMD — the paper's new protocol (Section 5.2).

A hybrid of AIMD and PCC: the sender keeps a congestion window (like TCP)
but reacts to the *measured loss rate* of a monitor interval rather than
to the mere presence of loss (like PCC)::

    x(t+1) = x(t) + a   if L(t) <  epsilon
    x(t+1) = x(t) * b   if L(t) >= epsilon

Tolerating loss below the threshold ``epsilon`` is what buys robustness to
non-congestion loss: random loss of rate under ``epsilon`` never triggers
a decrease, so the window keeps growing (Robust-AIMD is
``epsilon``-robust), while every other protocol in Table 1 is 0-robust.

The price, per Theorem 3 and Table 1, is a *tighter upper bound* on
TCP-friendliness than plain AIMD — yet a dramatically better one than
PCC's. Table 2's experiments use ``RobustAIMD(1, 0.8, 0.01)``.
"""

from __future__ import annotations

import numpy as np

from repro.model.sender import Observation
from repro.protocols.base import Protocol, format_params, validate_in_range


class RobustAIMD(Protocol):
    """``Robust-AIMD(a, b, epsilon)``: threshold-triggered AIMD stepping."""

    loss_based = True
    supports_vectorized = True
    supports_batched = True
    batch_param_names = ("a", "b", "epsilon")
    meanfield_trigger = ("ge", "epsilon")

    def __init__(self, a: float = 1.0, b: float = 0.8, epsilon: float = 0.01) -> None:
        if a <= 0:
            raise ValueError(f"additive increase a must be positive, got {a}")
        self.a = a
        self.b = validate_in_range("decrease factor b", b, 0.0, 1.0, low_open=True, high_open=True)
        self.epsilon = validate_in_range(
            "loss threshold epsilon", epsilon, 0.0, 1.0, low_open=True, high_open=True
        )

    def next_window(self, obs: Observation) -> float:
        if obs.loss_rate >= self.epsilon:
            return obs.window * self.b
        return obs.window + self.a

    def vectorized_next(self, windows: np.ndarray, loss_rate: float,
                        rtt: float) -> np.ndarray:
        if loss_rate >= self.epsilon:
            return windows * self.b
        return windows + self.a

    @staticmethod
    def batched_next(
        windows: np.ndarray,
        loss_rate: np.ndarray,
        rtt: np.ndarray,
        params: dict[str, np.ndarray],
    ) -> np.ndarray:
        return np.where(
            loss_rate >= params["epsilon"],
            windows * params["b"],
            windows + params["a"],
        )

    @property
    def name(self) -> str:
        return f"Robust-AIMD({format_params(self.a, self.b, self.epsilon)})"
