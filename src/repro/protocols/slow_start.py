"""Optional slow-start ramp in front of any congestion-avoidance protocol.

The paper analyzes protocols in congestion-avoidance mode only; real
stacks precede that with slow start (double the window each RTT until the
first loss or until a threshold). :class:`SlowStartWrapper` adds that ramp
to any :class:`~repro.protocols.base.Protocol`, which the packet-level
validation experiments use to shorten warm-up, and which lets users study
how the paper's asymptotic metrics are (un)affected by start-up behaviour.
"""

from __future__ import annotations

from repro.model.sender import Observation
from repro.protocols.base import Protocol


class SlowStartWrapper(Protocol):
    """Double the window each step until loss or ``ssthresh``, then delegate.

    The wrapped protocol's ``loss_based`` flag is inherited, since slow
    start itself reads only the loss signal.
    """

    def __init__(self, inner: Protocol, ssthresh: float = float("inf")) -> None:
        if ssthresh <= 0:
            raise ValueError(f"ssthresh must be positive, got {ssthresh}")
        self.inner = inner
        self.ssthresh = ssthresh
        self.loss_based = inner.loss_based
        self._in_slow_start = True

    def reset(self) -> None:
        self.inner.reset()
        self._in_slow_start = True

    @property
    def in_slow_start(self) -> bool:
        """Whether the ramp is still active."""
        return self._in_slow_start

    def next_window(self, obs: Observation) -> float:
        if self._in_slow_start:
            if obs.loss_rate > 0.0 or obs.window >= self.ssthresh:
                self._in_slow_start = False
            else:
                doubled = obs.window * 2.0
                if doubled >= self.ssthresh:
                    self._in_slow_start = False
                    return self.ssthresh
                return doubled
        return self.inner.next_window(obs)

    @property
    def name(self) -> str:
        return f"SlowStart+{self.inner.name}"
