"""A Vegas-style latency-avoiding protocol (the Theorem 5 foil).

Theorem 5 shows that any efficient loss-based protocol is arbitrarily
unfriendly to *any* latency-avoiding protocol: the loss-based sender keeps
filling the buffer until loss, while the latency-avoiding sender backs off
as soon as the RTT inflates, so its share collapses. TCP Vegas vs. Reno
(Mo et al.) is the classic instance.

Our :class:`VegasLike` mirrors Vegas's mechanism in the fluid model: it
estimates the propagation delay as the minimum RTT seen and steers the
window so the RTT stays below ``(1 + gamma) * minRTT`` — additively
increasing while below the bound, multiplicatively decreasing above it
(or on loss). It is *not* loss-based: it reads ``obs.rtt``.
"""

from __future__ import annotations

from repro.model.sender import Observation
from repro.protocols.base import Protocol, format_params, validate_in_range


class VegasLike(Protocol):
    """Latency-avoiding window control with RTT target ``(1 + gamma) * minRTT``."""

    loss_based = False

    def __init__(self, gamma: float = 0.1, a: float = 1.0, b: float = 0.875) -> None:
        self.gamma = validate_in_range("latency slack gamma", gamma, 0.0, 10.0, low_open=True)
        if a <= 0:
            raise ValueError(f"additive increase a must be positive, got {a}")
        self.a = a
        self.b = validate_in_range("decrease factor b", b, 0.0, 1.0, low_open=True, high_open=True)

    def next_window(self, obs: Observation) -> float:
        latency_bound = (1.0 + self.gamma) * obs.min_rtt
        if obs.loss_rate > 0.0 or obs.rtt > latency_bound:
            return obs.window * self.b
        return obs.window + self.a

    @property
    def name(self) -> str:
        return f"Vegas-like({format_params(self.gamma, self.a, self.b)})"
