"""Trace persistence: save and reload simulation traces.

Long sweeps are expensive; these helpers archive
:class:`~repro.model.trace.SimulationTrace` objects losslessly as ``.npz``
(numpy's compressed container) and export human-readable CSV for external
tooling. Experiment *results* (scalar tables) go through
:mod:`repro.experiments.results` instead.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.model.trace import SimulationTrace

_TRACE_FIELDS = (
    "windows",
    "observed_loss",
    "congestion_loss",
    "rtts",
    "capacities",
    "pipe_limits",
    "base_rtts",
)

_FORMAT_VERSION = 1


def save_trace(trace: SimulationTrace, path: str | Path) -> Path:
    """Write a trace to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {name: getattr(trace, name) for name in _TRACE_FIELDS}
    arrays["format_version"] = np.array(_FORMAT_VERSION)
    np.savez_compressed(path, **arrays)
    return path


def load_trace(path: str | Path) -> SimulationTrace:
    """Reload a trace written by :func:`save_trace`."""
    path = Path(path)
    with np.load(path) as data:
        version = int(data["format_version"]) if "format_version" in data else 0
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version} in {path}"
            )
        missing = [name for name in _TRACE_FIELDS if name not in data]
        if missing:
            raise ValueError(f"{path} is missing trace fields {missing}")
        return SimulationTrace(**{name: data[name] for name in _TRACE_FIELDS})


def trace_to_csv(trace: SimulationTrace, path: str | Path) -> Path:
    """Export a trace as CSV: one row per step, one window column per sender.

    Columns: ``step, congestion_loss, rtt, capacity, pipe_limit,
    window_0..window_{n-1}, loss_0..loss_{n-1}``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    n = trace.n_senders
    header = (
        ["step", "congestion_loss", "rtt", "capacity", "pipe_limit"]
        + [f"window_{i}" for i in range(n)]
        + [f"loss_{i}" for i in range(n)]
    )
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for t in range(trace.steps):
            writer.writerow(
                [
                    t,
                    repr(float(trace.congestion_loss[t])),
                    repr(float(trace.rtts[t])),
                    repr(float(trace.capacities[t])),
                    repr(float(trace.pipe_limits[t])),
                ]
                + [repr(float(w)) for w in trace.windows[t]]
                + [repr(float(l)) for l in trace.observed_loss[t]]
            )
    return path
