"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import debug
from repro.core.metrics.base import EstimatorConfig
from repro.model.link import Link


@pytest.fixture(autouse=True, scope="session")
def _sanitizer_checks():
    """Run the whole suite with the runtime sanitizer on.

    The checks are observers (bit-identity with checks off is itself
    property-tested), so enabling them suite-wide costs little and turns
    every existing test into an invariant test as well.
    """
    debug.enable()
    yield
    debug.disable()


@pytest.fixture
def emulab_link() -> Link:
    """The paper's 20 Mbps / 42 ms / 100 MSS reference link (C = 70 MSS)."""
    return Link.from_mbps(20, 42, 100)


@pytest.fixture
def shallow_link() -> Link:
    """A shallow-buffered link (10 MSS), the paper's other buffer setting."""
    return Link.from_mbps(20, 42, 10)


@pytest.fixture
def big_link() -> Link:
    """The 100 Mbps variant (C = 350 MSS)."""
    return Link.from_mbps(100, 42, 100)


@pytest.fixture
def fast_config() -> EstimatorConfig:
    """A reduced-horizon estimator config that keeps unit tests quick."""
    return EstimatorConfig(steps=1500, n_senders=2)
