"""Fast benchmark smoke: a tiny batched frontier grid equals the serial run.

This is the CI-sized version of ``benchmarks/bench_figure1.py``'s
speedup benchmark — no timing assertions (CI runners are too noisy),
just the correctness half of the contract: routing a small sweep grid
through ``run_specs(batch=True)`` must reproduce the serial drivers'
numbers exactly. CI runs this file as its own ``bench-smoke`` job.
"""

import numpy as np

from repro.core.metrics import EstimatorConfig
from repro.experiments.figure1 import (
    measure_aimd_point,
    measure_aimd_points_batched,
    run_figure1,
)
from repro.experiments.table2 import run_table2
from repro.model.link import Link
from repro.protocols import presets

_LINK = Link.from_mbps(20, 42, 100)
_CONFIG = EstimatorConfig(steps=600, n_senders=2)
_POINTS = [(a, b) for a in (0.5, 2.0) for b in (0.3, 0.7)]


def test_small_frontier_grid_batched_equals_serial():
    batched = measure_aimd_points_batched(
        _POINTS, _LINK, _CONFIG, use_cache=False
    )
    for (alpha, beta), b in zip(_POINTS, batched):
        s = measure_aimd_point(alpha, beta, _LINK, _CONFIG)
        assert s.measured_fast_utilization == b.measured_fast_utilization
        assert s.measured_efficiency == b.measured_efficiency
        assert s.measured_friendliness == b.measured_friendliness


def test_figure1_driver_batched_equals_serial():
    kwargs = dict(
        alphas=[0.5, 2.0], betas=[0.3, 0.7],
        empirical_alphas=[1.0], empirical_betas=[0.5],
        config=_CONFIG,
    )
    serial = run_figure1(**kwargs)
    batched = run_figure1(batch=True, **kwargs)
    assert serial.mutually_non_dominated == batched.mutually_non_dominated
    for s, b in zip(serial.empirical, batched.empirical):
        assert (s.alpha, s.beta) == (b.alpha, b.beta)
        assert s.measured_friendliness == b.measured_friendliness
        assert s.measured_efficiency == b.measured_efficiency


def test_table2_driver_batched_equals_serial():
    kwargs = dict(
        senders=(2,), bandwidths_mbps=(20, 60),
        pcc=presets.pcc_bound(), steps=600,
    )
    serial = run_table2(**kwargs)
    batched = run_table2(batch=True, **kwargs)
    assert len(serial.cells) == len(batched.cells)
    for s, b in zip(serial.cells, batched.cells):
        assert (s.n_senders, s.bandwidth_mbps) == (b.n_senders, b.bandwidth_mbps)
        assert s.friendliness_robust_aimd == b.friendliness_robust_aimd
        assert s.friendliness_pcc == b.friendliness_pcc


def test_heterogeneous_mixed_protocol_grid_batched_equals_serial():
    """AIMD/MIMD/Robust-AIMD specs interleave into one batch, bit-equal."""
    from repro.backends import ScenarioSpec, run_spec, run_specs
    from repro.backends.batch import plan_batches
    from repro.protocols.aimd import AIMD
    from repro.protocols.mimd import MIMD
    from repro.protocols.robust_aimd import RobustAIMD

    specs = [
        ScenarioSpec(protocols=[AIMD(1.0, 0.5)] * 2, link=_LINK, steps=400),
        ScenarioSpec(protocols=[MIMD(1.01, 0.875)] * 2, link=_LINK,
                     steps=400),
        ScenarioSpec(protocols=[RobustAIMD(1.0, 0.5, 0.05)] * 2, link=_LINK,
                     steps=400),
        ScenarioSpec(protocols=[AIMD(2.0, 0.3), MIMD(1.02, 0.9)],
                     link=Link.from_mbps(60, 42, 100), steps=400),
    ]
    plan = plan_batches(specs)
    assert plan.fallback == []
    assert [g.indices for g in plan.groups] == [[0, 1, 2, 3]]
    batched = run_specs(specs, batch=True, use_cache=False)
    for spec, trace in zip(specs, batched):
        reference = run_spec(spec, "fluid", use_cache=False)
        assert np.array_equal(
            np.ascontiguousarray(trace.windows).view(np.uint64),
            np.ascontiguousarray(reference.windows).view(np.uint64),
        )


def test_batched_grid_with_mixed_eligibility_matches_serial():
    """A grid where one cell falls back serially still matches end to end."""
    serial = run_table2(senders=(2,), bandwidths_mbps=(20,), steps=600)
    batched = run_table2(senders=(2,), bandwidths_mbps=(20,), steps=600,
                         batch=True)
    (s,), (b,) = serial.cells, batched.cells
    # The default PccLike is stateful, so its specs fall back — the cell
    # must still come out identical to the all-serial run.
    assert s.friendliness_pcc == b.friendliness_pcc
    assert s.friendliness_robust_aimd == b.friendliness_robust_aimd
    assert isinstance(np.float64(b.improvement), np.float64)
