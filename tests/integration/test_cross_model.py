"""Cross-model integration: fluid and packet simulators must agree on trends.

The packet simulator exists to validate fluid-model conclusions with
unsynchronized, per-packet feedback (the paper's Emulab role). These tests
pin the qualitative agreements the reproduction rests on.
"""

import numpy as np
import pytest

from repro.backends import ScenarioSpec, run_spec
from repro.core.metrics.base import EstimatorConfig
from repro.core.metrics.efficiency import estimate_efficiency
from repro.core.metrics.fairness import fairness_from_trace
from repro.core.metrics.friendliness import estimate_tcp_friendliness
from repro.core.metrics.loss_avoidance import loss_avoidance_from_trace
from repro.model.link import Link
from repro.packetsim.scenario import PacketScenario, run_scenario
from repro.protocols import presets
from repro.protocols.aimd import AIMD
from repro.protocols.slow_start import SlowStartWrapper


@pytest.fixture(scope="module")
def config():
    return EstimatorConfig(steps=2500, n_senders=2)


class TestEfficiencyAgreement:
    @pytest.mark.parametrize("b", [0.5, 0.875])
    def test_deeper_backoff_less_efficient_in_both_models(self, config, b):
        shallow = Link.from_mbps(20, 42, 10)
        fluid = min(1.0, estimate_efficiency(AIMD(1, b), shallow, config).score)
        packet = run_scenario(
            PacketScenario.from_mbps(
                20, 42, 10, [SlowStartWrapper(AIMD(1, b))] * 2, duration=15.0
            )
        ).utilization()
        # Both models put utilization in the same band (within 20 points —
        # desynchronized packet-level backoffs keep the pipe somewhat
        # fuller than the synchronized fluid sawtooth).
        assert abs(fluid - packet) < 0.2


class TestFriendlinessAgreement:
    def test_aggressive_aimd_unfriendly_in_both_models(self, config):
        link = Link.from_mbps(20, 42, 100)
        fluid = estimate_tcp_friendliness(AIMD(4, 0.5), link, config).score
        result = run_scenario(
            PacketScenario.from_mbps(
                20, 42, 100,
                [SlowStartWrapper(AIMD(4, 0.5)), SlowStartWrapper(presets.reno())],
                duration=20.0,
            )
        )
        packet = result.share_ratio(1, 0)
        assert fluid < 0.5
        assert packet < 0.6

    def test_robust_aimd_friendlier_than_pcc_in_both_models(self, config):
        # Table 2's conclusion must not be a fluid-model artifact.
        from repro.experiments.table2 import (
            measure_friendliness,
            measure_friendliness_packet,
        )

        fluid_gap = measure_friendliness(
            presets.robust_aimd_paper(), 2, 20, steps=2500
        ) / max(1e-9, measure_friendliness(presets.pcc_like(), 2, 20, steps=2500))
        packet_gap = measure_friendliness_packet(
            presets.robust_aimd_paper(), 2, 20, duration=20.0
        ) / max(1e-9, measure_friendliness_packet(presets.pcc_like(), 2, 20,
                                                  duration=20.0))
        assert fluid_gap > 1.5
        assert packet_gap > 1.5


class TestUnifiedBackendAgreement:
    """Axiom scores computed through the unified layer must agree across
    backends on the Table 1 default scenario (20 Mbps / 42 ms / 100 MSS).

    Documented tolerances (absolute, fluid vs packet):

    - efficiency (tail-mean utilization, capped at 1): 0.05 — the
      desynchronized packet backoffs keep the pipe slightly less full
      than the synchronized fluid sawtooth;
    - fairness (min/max tail-average windows): 0.15 — per-packet feedback
      adds jitter the deterministic fluid split does not have;
    - loss avoidance (max tail congestion loss): 0.05 — the packet trace
      reports a pooled loss rate, the fluid trace a per-step series; both
      must sit in the same small-loss band.

    The same ``ScenarioSpec`` (modulo the horizon encoding) drives both
    backends, and the same ``*_from_trace`` estimators consume both
    ``UnifiedTrace`` results — this is the acceptance test that any axiom
    score can be computed from any backend.
    """

    TOLERANCES = {"efficiency": 0.05, "fairness": 0.15, "loss_avoidance": 0.05}

    @pytest.fixture(
        scope="class",
        params=[("aimd", lambda: AIMD(1.0, 0.5)),
                ("robust_aimd", presets.robust_aimd_paper)],
        ids=["aimd", "robust-aimd"],
    )
    def traces(self, request):
        _, factory = request.param
        link = Link.from_mbps(20, 42, 100)
        fluid = run_spec(
            ScenarioSpec(protocols=[factory(), factory()], link=link,
                         steps=2500),
            "fluid",
        )
        packet = run_spec(
            ScenarioSpec(protocols=[factory(), factory()], link=link,
                         duration=25.0, slow_start=True, seed=1),
            "packet",
        )
        return fluid, packet

    def test_efficiency_agrees(self, traces):
        fluid, packet = traces
        scores = [
            float(np.minimum(1.0, t.tail(0.5).total_window()
                             / t.tail(0.5).capacities).mean())
            for t in (fluid, packet)
        ]
        assert abs(scores[0] - scores[1]) < self.TOLERANCES["efficiency"]

    def test_fairness_agrees(self, traces):
        fluid, packet = traces
        scores = [fairness_from_trace(t).score for t in (fluid, packet)]
        assert abs(scores[0] - scores[1]) < self.TOLERANCES["fairness"]

    def test_loss_avoidance_agrees(self, traces):
        fluid, packet = traces
        scores = [loss_avoidance_from_trace(t).score for t in (fluid, packet)]
        assert abs(scores[0] - scores[1]) < self.TOLERANCES["loss_avoidance"]
        assert all(0.0 <= s < 0.1 for s in scores)


class TestNetworkAgreement:
    def test_single_link_network_agrees_with_fluid_serial_and_batched(self):
        """The multi-link engine on a degenerate one-link topology rides
        the same Eq. (1) closure as the fluid model, so their aggregate
        trajectories coincide; the batched network lane must reproduce
        the serial engine bit for bit and therefore inherit the rung."""
        from repro.backends import run_specs
        from repro.netmodel.topology import single_link

        n = 4
        link = Link.from_mbps(2e-3 * n * 1000, 42, 10 * n)
        net_spec = ScenarioSpec(
            protocols=[AIMD(1, 0.5)] * n, link=link, steps=500,
            topology=single_link(link, n), initial_windows=[1.0] * n,
        )
        fluid_spec = ScenarioSpec(
            protocols=[AIMD(1, 0.5)] * n, link=link, steps=500,
            initial_windows=[1.0] * n,
        )
        (batched,) = run_specs(
            [net_spec], "network", batch=True, use_cache=False
        )
        serial = run_spec(net_spec, "network", use_cache=False)
        assert np.array_equal(
            np.ascontiguousarray(batched.windows).view(np.uint64),
            np.ascontiguousarray(serial.windows).view(np.uint64),
        )
        fluid = run_spec(fluid_spec, "fluid", use_cache=False)
        tail = lambda t: float(t.total_window()[250:].mean())  # noqa: E731
        assert tail(batched) == pytest.approx(tail(fluid), rel=1e-9)


class TestRobustnessAgreement:
    def test_random_loss_kills_reno_but_not_robust_aimd(self):
        # Packet-level rendition of Metric VI's scenario.
        def tail_throughput(protocol):
            result = run_scenario(
                PacketScenario.from_mbps(
                    20, 42, 100, [SlowStartWrapper(protocol)], duration=20.0,
                    random_loss_rate=0.005, seed=11,
                )
            )
            return result.throughputs()[0]

        reno = tail_throughput(presets.reno())
        robust = tail_throughput(presets.robust_aimd_paper())
        # Packet-level Bernoulli loss weakens the threshold advantage
        # relative to the fluid model's constant per-step loss: one drop in
        # a W-packet round reads as loss rate 1/W, which exceeds epsilon
        # whenever W < 1/epsilon. The ordering must still hold clearly.
        assert robust > 1.3 * reno
