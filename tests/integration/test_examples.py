"""Smoke-run every script in ``examples/``.

The examples double as executable documentation for the public API
(including the unified backend layer); each must stay runnable end to
end. They are run in subprocesses so a crashing example cannot poison
the test process, and the whole module is slow-marked — the scripts do
real simulation work.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script.name} exited with {proc.returncode}\n"
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
