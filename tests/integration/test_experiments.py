"""Integration tests: every experiment driver regenerates its paper artifact.

These run the real drivers at reduced horizons — large enough for the
qualitative claims (who wins, which bounds hold) to be stable, small
enough to keep the suite fast.
"""

import pytest

from repro.core.metrics import EstimatorConfig
from repro.experiments.claims import run_claims
from repro.experiments.emulab import run_emulab
from repro.experiments.figure1 import run_figure1
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.model.link import Link


@pytest.fixture(scope="module")
def table1_result():
    return run_table1(config=EstimatorConfig(steps=2500, n_senders=2))


@pytest.fixture(scope="module")
def table2_result():
    return run_table2(senders=(2, 3), bandwidths_mbps=(20, 60), steps=2500)


@pytest.fixture(scope="module")
def claims_result():
    return run_claims(steps=2500)


class TestTable1:
    def test_all_predictions_hold(self, table1_result):
        failures = table1_result.failures()
        assert not failures, [
            (f.protocol, f.metric, f.predicted, f.measured) for f in failures
        ]

    def test_hierarchy_agreement_high(self, table1_result):
        # The paper's Emulab criterion, in the fluid model: the measured
        # per-metric hierarchy matches the theoretical one.
        assert table1_result.agreement >= 0.95, table1_result.disagreements()

    def test_five_protocols_characterized(self, table1_result):
        assert len(table1_result.characterizations) == 5

    def test_only_robust_aimd_measures_robust(self, table1_result):
        robust = [
            c for c in table1_result.characterizations
            if c.empirical.robustness > 1e-3
        ]
        assert [c.protocol for c in robust] == ["Robust-AIMD(1,0.8,0.01)"]

    def test_reno_attains_theorem2_tightness(self, table1_result):
        reno = table1_result.characterizations[0]
        assert reno.protocol == "AIMD(1,0.5)"
        assert reno.empirical.tcp_friendliness == pytest.approx(1.0, abs=0.05)

    def test_json_payload_complete(self, table1_result):
        payload = table1_result.to_jsonable()
        assert set(payload["protocols"]) == {
            c.protocol for c in table1_result.characterizations
        }
        assert payload["predictions_hold"] == 1.0


class TestTable2:
    def test_robust_aimd_friendlier_in_every_cell(self, table2_result):
        # The paper's headline: Robust-AIMD consistently beats PCC's
        # TCP-friendliness — by at least the paper's 1.5x threshold.
        assert table2_result.all_friendlier
        assert table2_result.min_improvement > 1.5

    def test_cells_cover_grid(self, table2_result):
        pairs = {(c.n_senders, c.bandwidth_mbps) for c in table2_result.cells}
        assert pairs == {(2, 20), (2, 60), (3, 20), (3, 60)}

    def test_friendliness_values_positive(self, table2_result):
        for cell in table2_result.cells:
            assert cell.friendliness_robust_aimd > 0
            assert cell.friendliness_pcc >= 0

    def test_jsonable(self, table2_result):
        payload = table2_result.to_jsonable()
        assert payload["mean_improvement"] > 1.5
        assert len(payload["cells"]) == 4


class TestFigure1:
    def test_surface_and_attainment(self):
        result = run_figure1(
            alphas=[0.5, 1.0, 2.0],
            betas=[0.3, 0.5, 0.8],
            empirical_alphas=[1.0],
            empirical_betas=[0.5, 0.8],
            config=EstimatorConfig(steps=2500, n_senders=2),
        )
        assert result.mutually_non_dominated
        # AIMD attains the frontier: measured friendliness within 10%.
        assert result.max_friendliness_error < 0.1

    def test_series_layout(self):
        result = run_figure1(
            alphas=[1.0], betas=[0.5], empirical_alphas=[], empirical_betas=[]
        )
        series = result.series()
        assert series["tcp_friendliness"] == [pytest.approx(1.0)]


class TestClaims:
    def test_all_section4_statements_hold(self, claims_result):
        failures = claims_result.failures()
        assert claims_result.all_hold, [
            (f.statement, f.instance, f.observed) for f in failures
        ]

    def test_every_statement_covered(self, claims_result):
        statements = {c.statement.split(" ")[0] + " " + c.statement.split(" ")[1]
                      if c.statement.startswith("Theorem")
                      else c.statement for c in claims_result.checks}
        for required in ("Claim 1", "Theorem 1", "Theorem 2", "Theorem 3",
                         "Theorem 4", "Theorem 5"):
            assert any(required in s for s in statements)


@pytest.mark.slow
class TestEmulab:
    def test_hierarchy_agreement(self):
        # One representative cell pair keeps runtime modest; the full grid
        # runs in the benchmark suite.
        result = run_emulab(
            ns=(2,), bandwidths_mbps=(20,), buffers_mss=(100,), duration=15.0
        )
        assert result.agreement >= 0.8, result.disagreements()

    def test_measurements_physical(self):
        result = run_emulab(
            ns=(2,), bandwidths_mbps=(20,), buffers_mss=(10,), duration=10.0
        )
        for cell in result.measurements.values():
            for m in cell:
                assert 0 <= m.efficiency <= 1.1
                assert 0 <= m.loss_avoidance < 0.5
                assert 0 <= m.fairness <= 1.0

    def test_batched_grid_is_bit_identical_to_serial(self):
        # Two bandwidths -> two merge groups inside the batched runner.
        kwargs = dict(
            ns=(2,), bandwidths_mbps=(20, 30), buffers_mss=(100,),
            duration=10.0,
        )
        serial = run_emulab(**kwargs)
        batched = run_emulab(batch=True, **kwargs)
        assert batched.to_jsonable() == serial.to_jsonable()
