"""FCT study driver and the extended CLI commands."""

import pytest

from repro.cli import main
from repro.experiments.fct import default_backgrounds, render_fct, run_fct_study
from repro.model.link import Link
from repro.protocols import presets


class TestFctStudy:
    @pytest.fixture(scope="class")
    def study(self):
        # Reduced: two backgrounds, shorter horizon.
        return run_fct_study(
            link=Link.from_mbps(20, 42, 100),
            backgrounds={"none": None, "pcc-like": presets.pcc_like},
            rate_per_s=1.0,
            arrival_window=10.0,
            duration=20.0,
        )

    def test_pcc_background_hurts_short_flows(self, study):
        assert study.row("pcc-like").mean_fct > 2 * study.row("none").mean_fct

    def test_ordering(self, study):
        assert study.ordering() == ["none", "pcc-like"]

    def test_row_lookup(self, study):
        with pytest.raises(KeyError):
            study.row("bbr")

    def test_render(self, study):
        text = render_fct(study)
        assert "pcc-like" in text
        assert "least harmful" in text

    def test_jsonable(self, study, tmp_path):
        from repro.experiments.results import load_result, save_result

        loaded = load_result(save_result(study, tmp_path / "fct.json"))
        assert len(loaded["rows"]) == 2

    def test_default_backgrounds_cover_the_comparators(self):
        names = set(default_backgrounds())
        assert {"none", "reno", "cubic", "robust-aimd", "pcc-like"} <= names

    def test_batched_study_is_bit_identical_to_serial(self, study):
        batched = run_fct_study(
            link=Link.from_mbps(20, 42, 100),
            backgrounds={"none": None, "pcc-like": presets.pcc_like},
            rate_per_s=1.0,
            arrival_window=10.0,
            duration=20.0,
            replications=2,
            batch=True,
        )
        serial = run_fct_study(
            link=Link.from_mbps(20, 42, 100),
            backgrounds={"none": None, "pcc-like": presets.pcc_like},
            rate_per_s=1.0,
            arrival_window=10.0,
            duration=20.0,
            replications=2,
        )
        assert batched.to_jsonable() == serial.to_jsonable()


class TestCliExtendedCommands:
    def test_characterize_prints_scores_and_theory(self, capsys):
        exit_code = main(
            ["characterize", "--protocol", "AIMD(1,0.5)", "--steps", "800"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "efficiency" in out
        assert "theory:" in out

    def test_characterize_unknown_protocol(self):
        with pytest.raises(ValueError):
            main(["characterize", "--protocol", "BBR(1)"])

    def test_characterize_extensions_flag(self, capsys):
        exit_code = main(
            ["characterize", "--protocol", "reno", "--steps", "800",
             "--extensions"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "responsiveness" in out
        assert "churn_resilience" in out

    @pytest.mark.slow
    def test_emulab_subcommand_quick(self, capsys):
        exit_code = main(["emulab", "--duration", "4"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "Hierarchy agreement" in out

    def test_fct_subcommand(self, capsys):
        exit_code = main(
            ["fct", "--duration", "10", "--rate", "1.0", "--mean-size", "30"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "least harmful" in out

    def test_fct_replications_pool_the_workload(self):
        kwargs = dict(
            link=Link.from_mbps(20, 42, 100),
            backgrounds={"none": None},
            rate_per_s=1.0,
            arrival_window=6.0,
            duration=10.0,
        )
        one = run_fct_study(**kwargs, replications=1)
        two = run_fct_study(**kwargs, replications=2)
        assert two.rows[0].offered > one.rows[0].offered

    def test_fct_parallel_identical_to_serial(self):
        kwargs = dict(
            link=Link.from_mbps(20, 42, 100),
            backgrounds={"none": None, "reno": presets.reno},
            rate_per_s=1.0,
            arrival_window=6.0,
            duration=10.0,
            replications=2,
        )
        assert run_fct_study(**kwargs).rows == \
            run_fct_study(**kwargs, workers=2).rows
