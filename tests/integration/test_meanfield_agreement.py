"""Cross-backend agreement: the mean-field limit vs the per-flow engines.

The mean-field backend evolves the N → ∞ window density; the finite-N
engines should converge to it as N grows. These tests pin that with a
*documented, monotonically tightening* tolerance ladder on time-averaged
functionals (tail-mean per-flow aggregate share), comparing:

- synchronized mean-field vs the fluid engine (identical closures: the
  sync density is a point mass riding the fluid sawtooth, so they agree
  to float precision already at small N);
- unsynchronized mean-field vs the fluid engine's per-flow
  ``unsynchronized_loss`` sampling, N = 10 → 10 000;
- synchronized mean-field vs the packet engine (droptail at small N
  synchronizes drops), N = 10 → 100.

Every rung scales the link with N (capacity 2N Mbit/s, buffer 10N MSS)
so the per-flow share is constant and the N-dependence isolated to the
sampling noise the mean-field limit removes. Measured deviations (keep
for recalibration): unsync fluid ~0.006/0.007/0.010/0.003 at
N=10/100/1k/10k; packet 0.024/0.003 at N=10/100.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import ScenarioSpec, run_spec
from repro.protocols.aimd import AIMD

# N -> max relative deviation of tail-mean aggregate window. The ladder
# must tighten monotonically: more flows, closer to the limit.
FLUID_UNSYNC_TOLERANCES = {10: 0.06, 100: 0.04, 1000: 0.025, 10000: 0.015}
PACKET_SYNC_TOLERANCES = {10: 0.06, 100: 0.02}


def _spec(n: int, *, steps: int, unsync: bool, **kwargs):
    """The scaled scenario: capacity 2N Mbit/s, 42 ms, buffer 10N MSS."""
    return ScenarioSpec.from_mbps(
        2e-3 * n * 1000,
        42,
        10 * n,
        [AIMD(1, 0.5)] * n,
        steps=steps,
        unsynchronized_loss=unsync,
        seed=3,
        **kwargs,
    )


def _tail_share(trace, n: int, frac: float = 0.5) -> float:
    """Time-averaged aggregate window per flow over the trailing window."""
    total = trace.total_window()
    tail = total[int(len(total) * (1 - frac)):]
    return float(tail.mean()) / n


def test_tolerance_ladders_tighten_monotonically():
    for ladder in (FLUID_UNSYNC_TOLERANCES, PACKET_SYNC_TOLERANCES):
        ns = sorted(ladder)
        assert ns == list(ladder), "ladder must be declared in N order"
        tols = [ladder[n] for n in ns]
        assert tols == sorted(tols, reverse=True)
        assert len(set(tols)) == len(tols), "tolerances must strictly tighten"


def test_synchronized_meanfield_matches_fluid_tightly():
    """Same closure, no sampling: agreement well inside 1% at N=10."""
    spec = _spec(10, steps=600, unsync=False)
    mf = _tail_share(run_spec(spec, "meanfield", use_cache=False), 10)
    fl = _tail_share(run_spec(spec, "fluid", use_cache=False), 10)
    assert mf == pytest.approx(fl, rel=0.01)


@pytest.mark.parametrize("n", [10, 100, 1000])
def test_unsync_fluid_converges_to_meanfield(n):
    spec = _spec(n, steps=600, unsync=True)
    mf = _tail_share(run_spec(spec, "meanfield", use_cache=False), n)
    fl = _tail_share(run_spec(spec, "fluid", use_cache=False), n)
    rel = abs(mf - fl) / fl
    assert rel <= FLUID_UNSYNC_TOLERANCES[n], (n, mf, fl, rel)


@pytest.mark.slow
def test_unsync_fluid_converges_to_meanfield_large_n():
    n = 10_000
    spec = _spec(n, steps=250, unsync=True)
    mf = _tail_share(run_spec(spec, "meanfield", use_cache=False), n)
    fl = _tail_share(run_spec(spec, "fluid", use_cache=False), n)
    rel = abs(mf - fl) / fl
    assert rel <= FLUID_UNSYNC_TOLERANCES[n], (n, mf, fl, rel)


@pytest.mark.parametrize("n", [10, 100])
def test_packet_converges_to_synchronized_meanfield(n):
    steps = 600 if n == 10 else 400
    spec = _spec(n, steps=steps, unsync=False)
    mf = _tail_share(run_spec(spec, "meanfield", use_cache=False), n)
    # The packet engine's horizon is steps worth of base RTTs.
    pk = _tail_share(run_spec(spec, "packet", use_cache=False), n)
    rel = abs(mf - pk) / pk
    assert rel <= PACKET_SYNC_TOLERANCES[n], (n, mf, pk, rel)


@pytest.mark.parametrize("n", [10, 100])
def test_batched_meanfield_lane_slots_into_the_ladder(n):
    """The batched density kernel is a pure execution hint: its trace is
    bit-identical to the serial engine's, so the fluid-agreement rung
    holds for ``run_specs(batch=True)`` at the same tolerance."""
    from repro.backends import run_specs

    spec = _spec(n, steps=600, unsync=True)
    (batched,) = run_specs([spec], "meanfield", batch=True, use_cache=False)
    serial = run_spec(spec, "meanfield", use_cache=False)
    assert np.array_equal(
        np.ascontiguousarray(batched.windows).view(np.uint64),
        np.ascontiguousarray(serial.windows).view(np.uint64),
    )
    mf = _tail_share(batched, n)
    fl = _tail_share(run_spec(spec, "fluid", use_cache=False), n)
    rel = abs(mf - fl) / fl
    assert rel <= FLUID_UNSYNC_TOLERANCES[n], (n, mf, fl, rel)


def test_meanfield_is_flow_count_independent():
    """The same per-flow physics at 1000x the population: identical
    per-flow trajectory (bit-for-bit), since only populations scale."""
    small = _spec(4, steps=200, unsync=False)
    big = ScenarioSpec.from_mbps(
        2e-3 * 4 * 1000, 42, 10 * 4, [AIMD(1, 0.5)] * 4,
        steps=200, seed=3, flow_multiplicity=1000,
    )
    # Scale the big link so the per-flow share matches: capacity and
    # buffer both 1000x.
    big.link = type(small.link).from_mbps(2e-3 * 4000 * 1000, 42, 40000)
    tiny = run_spec(small, "meanfield", use_cache=False)
    huge = run_spec(big, "meanfield", use_cache=False)
    np.testing.assert_allclose(
        huge.total_window() / 1000.0, tiny.total_window(), rtol=1e-9
    )
