"""End-to-end checks of the performance layer against real drivers.

Serial and parallel driver runs must produce *identical* results (same
floats, same order), and experiment reruns under an active trace cache
must reload bit-identical traces rather than re-simulating.
"""

import numpy as np
import pytest

from repro.core.metrics import EstimatorConfig
from repro.experiments.claims import run_claims
from repro.experiments.figure1 import run_figure1
from repro.experiments.table2 import run_table2
from repro.perf import cache_enabled


def _table2_tuples(result):
    return [
        (c.n_senders, c.bandwidth_mbps, c.friendliness_robust_aimd,
         c.friendliness_pcc)
        for c in result.cells
    ]


class TestParallelDrivers:
    def test_table2_parallel_identical_to_serial(self):
        # The paper's full Table 2 grid shape at a reduced horizon.
        kwargs = dict(senders=(2, 3), bandwidths_mbps=(20, 30), steps=300)
        serial = run_table2(**kwargs)
        parallel = run_table2(workers=2, **kwargs)
        assert _table2_tuples(serial) == _table2_tuples(parallel)
        assert serial.pcc_standin == parallel.pcc_standin

    def test_figure1_parallel_identical_to_serial(self):
        kwargs = dict(
            empirical_alphas=[0.5, 1.0],
            empirical_betas=[0.5],
            config=EstimatorConfig(steps=300, n_senders=2),
        )
        serial = run_figure1(**kwargs)
        parallel = run_figure1(workers=2, **kwargs)
        assert serial.empirical == parallel.empirical

    def test_claims_parallel_identical_to_serial(self):
        serial = run_claims(steps=300)
        parallel = run_claims(steps=300, workers=2)
        assert [vars(c) for c in serial.checks] == [
            vars(c) for c in parallel.checks
        ]


class TestCachedExperiments:
    def test_table2_rerun_hits_cache_and_matches(self, tmp_path):
        kwargs = dict(senders=(2,), bandwidths_mbps=(20, 30), steps=300)
        cold_result = None
        with cache_enabled(tmp_path) as cache:
            cold_result = run_table2(**kwargs)
            cold_stats = (cache.hits, cache.misses)
            warm_result = run_table2(**kwargs)
            warm_stats = (cache.hits, cache.misses)
        assert cold_stats[0] == 0  # nothing cached yet
        assert cold_stats[1] > 0
        # The warm rerun resolved every simulation from the cache: no new
        # misses, and one unified-store hit per simulation. Each cold
        # simulation misses twice — once in the unified store, once in the
        # engine's own cache warming alongside (docs/backends.md).
        assert warm_stats[1] == cold_stats[1]
        assert 2 * warm_stats[0] == cold_stats[1]
        assert _table2_tuples(cold_result) == _table2_tuples(warm_result)

    def test_cached_matches_uncached_exactly(self, tmp_path):
        kwargs = dict(senders=(2,), bandwidths_mbps=(20,), steps=300)
        uncached = run_table2(**kwargs)
        with cache_enabled(tmp_path):
            run_table2(**kwargs)  # populate
            cached = run_table2(**kwargs)  # replay
        assert _table2_tuples(uncached) == _table2_tuples(cached)

    def test_parallel_workers_share_the_cache_via_env(self, tmp_path):
        kwargs = dict(senders=(2, 3), bandwidths_mbps=(20,), steps=300)
        with cache_enabled(tmp_path) as cache:
            run_table2(workers=2, **kwargs)  # workers populate via env
            warm = run_table2(**kwargs)  # parent replays from disk
            assert cache.stats()["entries"] > 0
            assert cache.hits > 0
        serial = run_table2(**kwargs)
        assert _table2_tuples(serial) == _table2_tuples(warm)
