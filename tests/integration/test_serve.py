"""End-to-end ``repro serve``: wire formats, dedup guarantees, concurrency."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.backends import ScenarioSpec, run_spec
from repro.exec import Executor
from repro.exec.client import ServeClient, ServeError
from repro.exec.serve import ServerThread
from repro.exec.wire import (
    decode_trace,
    encode_trace,
    spec_from_wire,
    spec_to_wire,
)
from repro.model.link import Link
from repro.perf.cache import cache_enabled
from repro.protocols.aimd import AIMD

_TRACE_FIELDS = ("windows", "observed_loss", "congestion_loss", "rtts",
                 "capacities", "pipe_limits", "base_rtts", "flow_rtts")


def _assert_bit_identical(a, b) -> None:
    for name in _TRACE_FIELDS:
        x = np.ascontiguousarray(getattr(a, name))
        y = np.ascontiguousarray(getattr(b, name))
        assert x.shape == y.shape, name
        assert np.array_equal(x.view(np.uint64), y.view(np.uint64)), name


def _wire(alpha: float) -> dict:
    return spec_to_wire([f"AIMD({alpha},0.5)", f"AIMD({alpha},0.5)"],
                        20, 42, 100, steps=32)


def _local(alpha: float):
    spec = ScenarioSpec(
        protocols=[AIMD(alpha, 0.5)] * 2,
        link=Link.from_mbps(20, 42, 100),
        steps=32,
    )
    return run_spec(spec, "fluid", use_cache=False)


class TestWireFormats:
    def test_spec_round_trip(self):
        wire = _wire(1.0)
        spec = spec_from_wire(wire)
        from repro.protocols import make_protocol

        expected = make_protocol("AIMD(1.0,0.5)").name
        assert [p.name for p in spec.protocols] == [expected] * 2
        assert spec.steps == 32
        _assert_bit_identical(run_spec(spec, "fluid", use_cache=False),
                              _local(1.0))

    def test_trace_codec_is_bit_identical(self):
        trace = _local(1.5)
        again = decode_trace(encode_trace(trace))
        _assert_bit_identical(trace, again)
        assert again.backend == trace.backend

    def test_unknown_keys_fail_loudly(self):
        with pytest.raises(ValueError, match="unknown wire spec key"):
            spec_to_wire(["reno"], 20, 42, 100, stepz=32)
        wire = _wire(1.0)
        wire["bogus"] = 1
        with pytest.raises(ValueError, match="unknown wire spec key"):
            spec_from_wire(wire)

    def test_missing_required_key_names_it(self):
        wire = _wire(1.0)
        del wire["rtt_ms"]
        with pytest.raises(ValueError, match="rtt_ms"):
            spec_from_wire(wire)


class TestServeEndToEnd:
    def test_concurrent_clients_dedup_to_one_computation(self, tmp_path):
        """The acceptance property: two concurrent clients submitting
        overlapping batches get bit-identical results while each unique
        spec is computed exactly once (store + in-flight dedup)."""
        batches = {
            "a": [_wire(1.0), _wire(2.0), _wire(1.0)],
            "b": [_wire(2.0), _wire(1.0)],
        }
        results: dict[str, list] = {}
        errors: list[BaseException] = []
        with cache_enabled(tmp_path):
            with ServerThread(executor=Executor()) as server:
                client = ServeClient(port=server.port)

                def drive(name: str) -> None:
                    try:
                        results[name] = client.run_specs(batches[name])
                    except Exception as exc:  # surfaced after join
                        errors.append(exc)

                threads = [
                    threading.Thread(target=drive, args=(name,))
                    for name in batches
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120)
                stats = client.stats()
        assert errors == []
        # Each unique spec computed exactly once, no matter how the two
        # requests interleaved (in-flight waiters or store hits absorb
        # every repeat).
        assert stats["executor"]["computed"] == 2
        assert stats["executor"]["jobs"] == 5
        assert stats["server"] == {"requests": 2, "specs_received": 5}
        reference = {1.0: _local(1.0), 2.0: _local(2.0)}
        for name, alphas in (("a", [1.0, 2.0, 1.0]), ("b", [2.0, 1.0])):
            assert len(results[name]) == len(alphas)
            for trace, alpha in zip(results[name], alphas):
                _assert_bit_identical(trace, reference[alpha])

    def test_failing_spec_streams_an_error_line(self):
        # integer_windows is wire-expressible but the network backend
        # refuses it at lowering time: a genuine runtime failure.
        bad = spec_to_wire(["AIMD(1,0.5)"], 20, 42, 100, steps=32,
                           integer_windows=True)
        good = _wire(1.0)
        with ServerThread(executor=Executor()) as server:
            client = ServeClient(port=server.port)
            holes = client.run_specs([good, bad, good], backend="network",
                                     skip_errors=True)
            assert holes[1] is None
            assert holes[0] is not None and holes[2] is not None
            with pytest.raises(ServeError, match="failed on the server"):
                client.run_specs([bad], backend="network")

    def test_http_error_paths(self):
        with ServerThread(executor=Executor()) as server:
            client = ServeClient(port=server.port)
            with pytest.raises(ServeError, match="HTTP 400"):
                client.run_specs([{"protocols": ["reno"]}])  # missing keys
            response = client._request("GET", "/nope")
            assert response.status == 404
            response = client._request("PUT", "/run")
            assert response.status == 405
            stats = client.stats()
            assert stats["server"]["requests"] == 0  # no /run succeeded

    def test_batch_lane_matches_local_batched_run(self, tmp_path):
        wires = [_wire(1.0), _wire(1.5), _wire(2.0)]
        with cache_enabled(tmp_path):
            with ServerThread(executor=Executor()) as server:
                client = ServeClient(port=server.port)
                served = client.run_specs(wires, batch=True)
        for trace, alpha in zip(served, (1.0, 1.5, 2.0)):
            _assert_bit_identical(trace, _local(alpha))


@pytest.mark.slow
class TestServeStress:
    def test_many_clients_heavy_overlap(self, tmp_path):
        """Six clients hammer one server with overlapping batches; every
        result is bit-identical and each unique spec computes once."""
        alphas = [round(1.0 + 0.25 * i, 2) for i in range(8)]
        reference = {alpha: _local(alpha) for alpha in alphas}
        client_batches = [
            [alphas[(start + j) % len(alphas)] for j in range(5)]
            for start in range(6)
        ]
        results: dict[int, list] = {}
        errors: list[BaseException] = []
        with cache_enabled(tmp_path):
            with ServerThread(executor=Executor()) as server:

                def drive(slot: int) -> None:
                    try:
                        client = ServeClient(port=server.port)
                        results[slot] = client.run_specs(
                            [_wire(a) for a in client_batches[slot]]
                        )
                    except Exception as exc:
                        errors.append(exc)

                threads = [
                    threading.Thread(target=drive, args=(slot,))
                    for slot in range(len(client_batches))
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=300)
                stats = ServeClient(port=server.port).stats()
        assert errors == []
        assert stats["executor"]["computed"] == len(alphas)
        for slot, batch in enumerate(client_batches):
            for trace, alpha in zip(results[slot], batch):
                _assert_bit_identical(trace, reference[alpha])
