"""The protocol survey driver (repro.experiments.survey)."""

import math

import pytest

from repro.core.metrics import EstimatorConfig
from repro.experiments.survey import (
    default_regimes,
    default_roster,
    render_survey,
    run_survey,
)
from repro.model.link import Link
from repro.protocols import presets


@pytest.fixture(scope="module")
def survey():
    # One regime, reduced roster/horizon: fast but still end-to-end.
    roster = {
        "reno": presets.reno,
        "scalable": presets.scalable_mimd,
        "robust-aimd": presets.robust_aimd_paper,
        "vegas-like": presets.vegas,
    }
    regimes = {"wan-20M": Link.from_mbps(20, 42, 100)}
    return run_survey(
        roster=roster,
        regimes=regimes,
        config=EstimatorConfig(steps=1500, n_senders=2),
    )


class TestSurveyResults:
    def test_entry_count(self, survey):
        assert len(survey.entries) == 4

    def test_lookup_by_regime_and_protocol(self, survey):
        assert len(survey.for_regime("wan-20M")) == 4
        assert len(survey.for_protocol("reno")) == 1
        with pytest.raises(KeyError):
            survey.for_regime("datacenter")
        with pytest.raises(KeyError):
            survey.for_protocol("bbr")

    def test_classification_story_holds(self, survey):
        # The survey reproduces the paper's classification: Robust-AIMD is
        # the only robust protocol; Vegas-like owns latency; MIMD fails
        # fairness.
        assert survey.best_in("wan-20M", "robustness") == "robust-aimd"
        assert survey.best_in("wan-20M", "latency_avoidance") == "vegas-like"
        scalable = survey.for_protocol("scalable")[0]
        assert scalable.vector.fairness < 0.1

    def test_mimd_starves_joiners(self, survey):
        scalable = survey.for_protocol("scalable")[0]
        assert math.isinf(scalable.churn_resilience)

    def test_reno_extensions_finite(self, survey):
        reno = survey.for_protocol("reno")[0]
        assert math.isfinite(reno.responsiveness)
        assert math.isfinite(reno.churn_resilience)

    def test_render_contains_all_protocols(self, survey):
        text = render_survey(survey)
        for name in ("reno", "scalable", "robust-aimd", "vegas-like"):
            assert name in text

    def test_jsonable_roundtrips(self, survey, tmp_path):
        from repro.experiments.results import load_result, save_result

        loaded = load_result(save_result(survey, tmp_path / "survey.json"))
        assert len(loaded["entries"]) == 4


class TestDefaults:
    def test_default_roster_builds(self):
        for name, factory in default_roster().items():
            protocol = factory()
            assert protocol.name, name

    def test_default_regimes_are_links(self):
        for name, link in default_regimes().items():
            assert link.capacity > 0, name
