"""Frozen pre-refactor packet simulator, kept as a bit-identity oracle.

This module is a verbatim copy (modulo naming) of the packet-level
simulator as it stood *before* the slotted-engine / packet-pool refactor:
a closure-based heapq scheduler, a fresh frozen-dataclass ``Packet`` per
send, and per-round dict records. The property tests in
``test_prop_packetsim_identity.py`` run the same ``PacketScenario``
through this reference and through ``repro.packetsim.run_scenario`` and
require the resulting ``FlowStats``/``QueueStats`` to match bit for bit
(float arrays compared as raw uint64 patterns).

Do not "improve" this file: its value is that it does NOT change when the
production simulator is optimised.
"""

from __future__ import annotations

import copy
import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.model.sender import Observation
from repro.packetsim.host import FlowStats
from repro.packetsim.scenario import PacketScenario
from repro.protocols.base import Protocol


class ReferenceScheduler:
    """The seed's closure-based deterministic event loop."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0 or not math.isfinite(delay):
            raise ValueError(f"delay must be finite and non-negative, got {delay}")
        heapq.heappush(self._heap, (self._now + delay, next(self._sequence), callback))

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        heapq.heappush(self._heap, (when, next(self._sequence), callback))

    def run_until(self, end_time: float, max_events: int | None = None) -> None:
        if end_time < self._now:
            raise ValueError(f"end_time {end_time} is before now {self._now}")
        budget = math.inf if max_events is None else max_events
        while self._heap and self._heap[0][0] <= end_time:
            if self._processed >= budget:
                raise RuntimeError(
                    f"exceeded max_events={max_events}; possible event storm"
                )
            when, _, callback = heapq.heappop(self._heap)
            self._now = when
            self._processed += 1
            callback()
        self._now = end_time


@dataclass(frozen=True)
class ReferencePacket:
    flow_id: int
    sequence: int
    sent_at: float
    round_index: int


@dataclass
class ReferenceQueueStats:
    enqueued: int = 0
    dropped: int = 0
    departed: int = 0
    max_occupancy: int = 0


class ReferenceQueue:
    """The seed's droptail FIFO with closure-scheduled serialization."""

    def __init__(
        self,
        scheduler: ReferenceScheduler,
        bandwidth: float,
        capacity: int,
        on_departure: Callable[[ReferencePacket], None],
        on_drop: Callable[[ReferencePacket], None],
    ) -> None:
        self._scheduler = scheduler
        self._service_time = 1.0 / bandwidth
        self.capacity = capacity
        self._on_departure = on_departure
        self._on_drop = on_drop
        self._buffer: deque[ReferencePacket] = deque()
        self._busy = False
        self.stats = ReferenceQueueStats()

    def arrive(self, packet: ReferencePacket) -> None:
        if len(self._buffer) >= self.capacity and self._busy:
            self.stats.dropped += 1
            self._on_drop(packet)
            return
        self.stats.enqueued += 1
        self._buffer.append(packet)
        self.stats.max_occupancy = max(self.stats.max_occupancy, len(self._buffer))
        if not self._busy:
            self._start_service()

    def _start_service(self) -> None:
        if not self._buffer:
            self._busy = False
            return
        self._busy = True
        packet = self._buffer.popleft()

        def finish() -> None:
            self.stats.departed += 1
            self._on_departure(packet)
            self._start_service()

        self._scheduler.schedule(self._service_time, finish)


@dataclass
class _ReferenceRound:
    quota: int
    sent: int = 0
    acked: int = 0
    lost: int = 0
    rtt_sum: float = 0.0

    @property
    def complete(self) -> bool:
        return self.sent >= self.quota and self.acked + self.lost >= self.sent

    @property
    def loss_rate(self) -> float:
        return self.lost / self.sent if self.sent else 0.0

    def mean_rtt(self, fallback: float) -> float:
        return self.rtt_sum / self.acked if self.acked else fallback


class ReferenceFlow:
    """The seed's ACK-clocked sender, verbatim."""

    def __init__(
        self,
        flow_id: int,
        protocol: Protocol,
        scheduler: ReferenceScheduler,
        transmit: Callable[[ReferencePacket], None],
        initial_window: float = 1.0,
        min_window: float = 1.0,
        max_window: float = 1e9,
        start_time: float = 0.0,
    ) -> None:
        self.flow_id = flow_id
        self.protocol = protocol
        self._scheduler = scheduler
        self._transmit = transmit
        self.cwnd = float(initial_window)
        self._min_window = min_window
        self._max_window = max_window
        self.start_time = start_time
        self.inflight = 0
        self._next_seq = 0
        self._send_round = 0
        self._decision_round = 0
        self._rounds: dict[int, _ReferenceRound] = {}
        self._min_rtt = math.inf
        self._last_rtt = math.nan
        self.stats = FlowStats()

    def start(self) -> None:
        self.protocol.reset()
        self._scheduler.schedule_at(
            max(self.start_time, self._scheduler.now), self._pump
        )

    def _quota(self) -> int:
        return max(1, int(round(self.cwnd)))

    def _round(self, index: int) -> _ReferenceRound:
        if index not in self._rounds:
            self._rounds[index] = _ReferenceRound(quota=self._quota())
        return self._rounds[index]

    def _pump(self) -> None:
        while self.inflight < int(self.cwnd) or self.inflight == 0:
            record = self._round(self._send_round)
            if record.sent >= record.quota:
                self._send_round += 1
                continue
            packet = ReferencePacket(
                flow_id=self.flow_id,
                sequence=self._next_seq,
                sent_at=self._scheduler.now,
                round_index=self._send_round,
            )
            self._next_seq += 1
            record.sent += 1
            self.inflight += 1
            self.stats.packets_sent += 1
            self._transmit(packet)
            if self.inflight >= max(1, int(self.cwnd)):
                break

    def on_ack(self, packet: ReferencePacket) -> None:
        now = self._scheduler.now
        rtt = now - packet.sent_at
        self.inflight -= 1
        record = self._round(packet.round_index)
        record.acked += 1
        record.rtt_sum += rtt
        self.stats.packets_acked += 1
        self.stats.ack_times.append(now)
        self.stats.rtt_samples.append(rtt)
        self._min_rtt = min(self._min_rtt, rtt)
        self._last_rtt = rtt
        self._maybe_close_rounds()
        self._pump()

    def on_loss(self, packet: ReferencePacket) -> None:
        self.inflight -= 1
        record = self._round(packet.round_index)
        record.lost += 1
        self.stats.packets_lost += 1
        self.stats.loss_times.append(self._scheduler.now)
        self._maybe_close_rounds()
        self._pump()

    def _maybe_close_rounds(self) -> None:
        while True:
            record = self._rounds.get(self._decision_round)
            if record is None or not record.complete:
                return
            fallback = self._last_rtt if math.isfinite(self._last_rtt) else 1.0
            observation = Observation(
                step=self._decision_round,
                window=self.cwnd,
                loss_rate=record.loss_rate,
                rtt=record.mean_rtt(fallback),
                min_rtt=self._min_rtt if math.isfinite(self._min_rtt) else fallback,
            )
            new_window = self.protocol.next_window(observation)
            self.cwnd = min(max(new_window, self._min_window), self._max_window)
            self.stats.rounds_completed += 1
            self.stats.window_samples.append((self._scheduler.now, self.cwnd))
            del self._rounds[self._decision_round]
            self._decision_round += 1


def reference_run_scenario(scenario: PacketScenario):
    """The seed's ``run_scenario``, returning (flow stats, queue stats, events)."""
    scheduler = ReferenceScheduler()
    link = scenario.link
    theta = link.theta
    rng = np.random.default_rng(scenario.seed)

    flows: list[ReferenceFlow] = []

    def deliver(packet: ReferencePacket) -> None:
        flow = flows[packet.flow_id]
        if scenario.random_loss_rate > 0.0 and rng.random() < scenario.random_loss_rate:
            scheduler.schedule(2 * theta, lambda: flow.on_loss(packet))
            return
        scheduler.schedule(2 * theta, lambda: flow.on_ack(packet))

    def drop(packet: ReferencePacket) -> None:
        flow = flows[packet.flow_id]
        scheduler.schedule(link.base_rtt, lambda: flow.on_loss(packet))

    queue = ReferenceQueue(
        scheduler,
        bandwidth=link.bandwidth,
        capacity=int(link.buffer_size),
        on_departure=deliver,
        on_drop=drop,
    )

    start_times = scenario.start_times or [0.0] * len(scenario.protocols)
    for index, protocol in enumerate(scenario.protocols):
        flows.append(
            ReferenceFlow(
                flow_id=index,
                protocol=copy.deepcopy(protocol),
                scheduler=scheduler,
                transmit=queue.arrive,
                initial_window=scenario.initial_window,
                start_time=start_times[index],
            )
        )
    for flow in flows:
        flow.start()

    scheduler.run_until(scenario.duration)
    return (
        [flow.stats for flow in flows],
        queue.stats,
        scheduler.processed_events,
    )
