"""Bit-identity properties of the unified backend layer.

The backend layer must be a pure re-expression: lowering a
``ScenarioSpec`` to an engine and adapting the result back cannot change
a single bit relative to driving that engine by hand, and a trace served
from the unified cache must equal the trace computed fresh. Exact
``np.array_equal`` throughout — no tolerances.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import ScenarioSpec, get_backend, run_spec
from repro.model.dynamics import FluidSimulator, SimulationConfig
from repro.model.link import Link
from repro.packetsim.scenario import PacketScenario, run_scenario
from repro.perf.cache import cache_enabled, simulation_key
from repro.perf.store import unified_key
from repro.protocols.aimd import AIMD
from repro.protocols.mimd import MIMD

links = st.builds(
    Link.from_mbps,
    bandwidth_mbps=st.sampled_from([10.0, 20.0, 60.0]),
    rtt_ms=st.sampled_from([10.0, 42.0]),
    buffer_mss=st.sampled_from([10.0, 100.0]),
)
protocol_lists = st.lists(
    st.one_of(
        st.builds(AIMD, st.sampled_from([0.5, 1.0, 2.0]),
                  st.sampled_from([0.5, 0.8])),
        st.builds(MIMD, st.just(1.01), st.just(0.875)),
    ),
    min_size=1,
    max_size=3,
)


def _trace_equal(a, b) -> bool:
    return all(
        np.array_equal(getattr(a, name), getattr(b, name), equal_nan=True)
        for name in ("windows", "observed_loss", "congestion_loss", "rtts",
                     "capacities", "pipe_limits", "base_rtts")
    )


@settings(deadline=None, max_examples=25)
@given(
    link=links,
    protocols=protocol_lists,
    steps=st.integers(min_value=16, max_value=96),
    loss=st.sampled_from([0.0, 0.01]),
    slow_start=st.booleans(),
)
def test_fluid_lowering_is_bit_identical_to_hand_driver(
    link, protocols, steps, loss, slow_start
):
    spec = ScenarioSpec(
        protocols=protocols, link=link, steps=steps,
        random_loss_rate=loss, slow_start=slow_start,
    )
    unified = run_spec(spec, "fluid", use_cache=False)

    lowered_link, lowered_protocols, config, lowered_steps = spec.lower_fluid()
    reference = FluidSimulator(
        lowered_link, lowered_protocols, config=config
    ).run(lowered_steps)
    assert lowered_steps == steps
    assert _trace_equal(unified, reference)
    assert unified.backend == "fluid"
    assert np.array_equal(
        unified.flow_rtts,
        np.repeat(reference.rtts[:, None], len(protocols), axis=1),
    )


@settings(deadline=None, max_examples=25)
@given(
    link=links,
    protocols=protocol_lists,
    steps=st.integers(min_value=16, max_value=96),
    spread=st.booleans(),
)
def test_from_fluid_round_trip_preserves_config_and_key(
    link, protocols, steps, spread
):
    initial = [1.0 + (i if spread else 0.0) for i in range(len(protocols))]
    config = SimulationConfig(initial_windows=initial)
    spec = ScenarioSpec.from_fluid(link, protocols, steps, config)
    lowered_link, lowered_protocols, lowered_config, lowered_steps = (
        spec.lower_fluid()
    )
    assert lowered_link == link
    assert lowered_steps == steps
    ours = dataclasses.asdict(lowered_config)
    theirs = dataclasses.asdict(config)
    # loss_process/schedule round-trip by content (NoLoss/empty-schedule
    # normalization rebuilds fresh defaults); everything else is the very
    # same value. Content equality of the two is what the key asserts.
    ours_loss, theirs_loss = ours.pop("loss_process"), theirs.pop("loss_process")
    assert type(ours_loss) is type(theirs_loss)
    assert ours == theirs
    assert (
        simulation_key(lowered_link, lowered_protocols, lowered_config,
                       lowered_config.initial_windows, lowered_steps)
        == simulation_key(link, protocols, config,
                          config.initial_windows, steps)
    )


@settings(deadline=None, max_examples=25)
@given(
    protocols=protocol_lists,
    duration=st.sampled_from([4.0, 8.0]),
    loss=st.sampled_from([0.0, 0.01]),
    seed=st.integers(min_value=0, max_value=3),
)
def test_packet_lowering_is_field_identical(protocols, duration, loss, seed):
    spec = ScenarioSpec.from_mbps(
        20, 42, 100, protocols, duration=duration,
        random_loss_rate=loss, seed=seed,
    )
    lowered = spec.lower_packet()
    reference = PacketScenario.from_mbps(
        20, 42, 100, protocols, duration=duration,
        random_loss_rate=loss, seed=seed,
    )
    assert lowered.link == reference.link
    assert lowered.duration == reference.duration
    assert lowered.initial_window == reference.initial_window
    assert lowered.random_loss_rate == reference.random_loss_rate
    assert lowered.seed == reference.seed
    assert lowered.start_times == reference.start_times
    assert lowered.sample_queue == reference.sample_queue
    assert [type(p) for p in lowered.protocols] == [
        type(p) for p in reference.protocols
    ]
    # Same engine, same stats — flow for flow.
    ours = run_scenario(lowered)
    theirs = run_scenario(reference)
    assert ours.throughputs() == theirs.throughputs()
    for a, b in zip(ours.flows, theirs.flows):
        assert a.window_samples == b.window_samples
        assert (a.packets_acked, a.packets_lost) == (
            b.packets_acked, b.packets_lost
        )


@settings(deadline=None, max_examples=10)
@given(
    backend_name=st.sampled_from(["fluid", "network", "packet"]),
    steps=st.integers(min_value=16, max_value=64),
    loss=st.sampled_from([0.0, 0.01]),
)
def test_cached_run_equals_uncached_run(tmp_path_factory, backend_name,
                                        steps, loss):
    spec = ScenarioSpec(
        protocols=[AIMD(1.0, 0.5), AIMD(1.0, 0.8)],
        link=Link.from_mbps(20, 42, 100),
        steps=steps,
        random_loss_rate=loss if backend_name != "network" else 0.0,
        seed=1,
    )
    fresh = run_spec(spec, backend_name, use_cache=False)
    directory = tmp_path_factory.mktemp(f"unified-{backend_name}")
    with cache_enabled(directory) as cache:
        warm = run_spec(spec, backend_name)  # miss: runs and stores
        hit = run_spec(spec, backend_name)   # hit: served from the store
        key = unified_key(backend_name, spec)
        assert key is not None
        assert cache.stats()["entries"] >= 1
    assert _trace_equal(fresh, warm)
    assert _trace_equal(warm, hit)
    assert warm.backend == hit.backend == backend_name
    assert np.array_equal(warm.flow_rtts, hit.flow_rtts, equal_nan=True)
    if warm.times is None:
        assert hit.times is None
    else:
        assert np.array_equal(warm.times, hit.times, equal_nan=True)


def test_cache_keys_distinct_across_backends():
    spec = ScenarioSpec(
        protocols=[AIMD(1.0, 0.5)], link=Link.from_mbps(20, 42, 100), steps=32
    )
    keys = {
        name: get_backend(name).cache_key(spec)
        for name in ("fluid", "network", "packet")
    }
    assert all(isinstance(k, str) and len(k) == 64 for k in keys.values())
    assert len(set(keys.values())) == 3
