"""Property: the batched fluid kernel is bit-identical to the serial path.

The contract that makes ``run_specs(..., batch=True)`` a pure execution
hint: for every batch-eligible grid of scenarios, the stacked kernel must
produce, spec for spec, exactly the float64 arrays the serial
``run_spec`` path produces — raw bit patterns, not tolerances. That is
what lets sweep drivers opt whole grids in, and lets batched runs warm
the same cache entries serial runs read.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import ScenarioSpec, run_spec, run_specs_batched
from repro.backends.batch import plan_batches
from repro.model.link import Link
from repro.protocols.aimd import AIMD
from repro.protocols.mimd import MIMD
from repro.protocols.robust_aimd import RobustAIMD

_TRACE_ARRAYS = (
    "windows",
    "observed_loss",
    "congestion_loss",
    "rtts",
    "capacities",
    "pipe_limits",
    "base_rtts",
    "flow_rtts",
)


def _assert_bit_identical(batched, serial):
    for name in _TRACE_ARRAYS:
        a = np.ascontiguousarray(getattr(batched, name))
        b = np.ascontiguousarray(getattr(serial, name))
        assert a.shape == b.shape, name
        # view(uint64) compares exact bit patterns; NaN == NaN included.
        assert np.array_equal(a.view(np.uint64), b.view(np.uint64)), name


def _check_grid(specs, **kwargs):
    batched = run_specs_batched(specs, use_cache=False, **kwargs)
    for spec, trace in zip(specs, batched):
        _assert_bit_identical(trace, run_spec(spec, "fluid", use_cache=False))


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    grid=st.integers(min_value=2, max_value=12),
    n=st.integers(min_value=1, max_value=4),
    steps=st.integers(min_value=16, max_value=200),
)
def test_aimd_grid_bit_identical(seed, grid, n, steps):
    rng = np.random.default_rng(seed)
    specs = []
    for _ in range(grid):
        link = Link.from_mbps(float(rng.uniform(5, 200)), 42,
                              float(rng.uniform(5, 400)))
        protocols = [
            AIMD(float(rng.uniform(0.1, 5.0)), float(rng.uniform(0.1, 0.9)))
            for _ in range(n)
        ]
        specs.append(ScenarioSpec(
            protocols=protocols, link=link, steps=steps,
            initial_windows=[float(w) for w in rng.uniform(1.0, 50.0, size=n)],
        ))
    # One homogeneous class/horizon group — the whole grid is one batch.
    plan = plan_batches(specs)
    assert not plan.fallback
    assert [len(g.indices) for g in plan.groups] == [grid]
    _check_grid(specs)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    loss_rate=st.floats(min_value=0.0, max_value=0.05),
)
def test_mimd_grid_with_random_loss_bit_identical(seed, loss_rate):
    rng = np.random.default_rng(seed)
    link = Link.from_mbps(20, 42, 100)
    specs = [
        ScenarioSpec(
            protocols=[MIMD(float(rng.uniform(1.001, 1.1)),
                            float(rng.uniform(0.5, 0.99)))] * 2,
            link=link, steps=120,
            initial_windows=[1.0, float(rng.uniform(1.0, 30.0))],
            random_loss_rate=loss_rate,
        )
        for _ in range(6)
    ]
    _check_grid(specs)


@settings(max_examples=8, deadline=None)
@given(
    epsilon=st.floats(min_value=0.001, max_value=0.2),
    n=st.integers(min_value=2, max_value=4),
)
def test_heterogeneous_robust_aimd_vs_reno_bit_identical(epsilon, n):
    """Mixed protocol classes per scenario — serial takes the general loop."""
    link = Link.from_mbps(30, 42, 100)
    specs = [
        ScenarioSpec(
            protocols=[RobustAIMD(1.0, 0.8, epsilon)] * (n - 1) + [AIMD(1.0, 0.5)],
            link=Link.from_mbps(float(bw), 42, 100),
            steps=150,
            initial_windows=[1.0] * n,
        )
        for bw in (20, 30, 60, 100)
    ]
    del link
    _check_grid(specs)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n=st.integers(min_value=1, max_value=4),
    loss_rate=st.floats(min_value=0.0, max_value=0.03),
)
def test_heterogeneous_class_grid_is_one_batch_bit_identical(seed, n, loss_rate):
    """Scenarios with *different* protocol-class mixes share one kernel.

    This is the Table 1 shape the planner used to fall back on: the
    class tuple varies per scenario and per flow, so the batch dispatches
    through the per-cell protocol-id table. Every row must still match
    its serial trace bit for bit.
    """
    rng = np.random.default_rng(seed)

    def protocol():
        kind = rng.integers(0, 3)
        if kind == 0:
            return AIMD(float(rng.uniform(0.1, 3.0)), float(rng.uniform(0.2, 0.9)))
        if kind == 1:
            return MIMD(float(rng.uniform(1.001, 1.1)), float(rng.uniform(0.5, 0.99)))
        return RobustAIMD(
            float(rng.uniform(0.1, 2.0)),
            float(rng.uniform(0.3, 0.95)),
            float(rng.uniform(0.001, 0.2)),
        )

    specs = [
        ScenarioSpec(
            protocols=[protocol() for _ in range(n)],
            link=Link.from_mbps(float(rng.uniform(5, 150)), 42,
                                float(rng.uniform(10, 300))),
            steps=120,
            initial_windows=[float(w) for w in rng.uniform(1.0, 40.0, size=n)],
            random_loss_rate=loss_rate,
        )
        for _ in range(8)
    ]
    plan = plan_batches(specs)
    assert not plan.fallback
    assert [len(g.indices) for g in plan.groups] == [8]
    _check_grid(specs)


def test_mixed_horizons_split_into_groups():
    """Different step counts batch separately but all stay bit-identical."""
    rng = np.random.default_rng(7)
    specs = []
    for steps in (50, 100, 50, 100, 50):
        specs.append(ScenarioSpec(
            protocols=[AIMD(float(rng.uniform(0.5, 2.0)), 0.5)] * 2,
            link=Link.from_mbps(float(rng.uniform(10, 100)), 42, 100),
            steps=steps,
            initial_windows=[1.0, 8.0],
        ))
    plan = plan_batches(specs)
    assert sorted(len(g.indices) for g in plan.groups) == [2, 3]
    _check_grid(specs)


def test_shared_memory_scheduler_matches_inline_kernel():
    """workers>1 routes through the shm chunk scheduler; same bits out."""
    rng = np.random.default_rng(11)
    specs = [
        ScenarioSpec(
            protocols=[AIMD(float(rng.uniform(0.2, 3.0)),
                            float(rng.uniform(0.2, 0.8)))] * 2,
            link=Link.from_mbps(float(rng.uniform(10, 150)), 42, 100),
            steps=80,
            initial_windows=[float(w) for w in rng.uniform(1.0, 40.0, size=2)],
        )
        for _ in range(24)
    ]
    inline = run_specs_batched(specs, use_cache=False)
    parallel = run_specs_batched(specs, use_cache=False, workers=2, chunk_rows=5)
    for a, b in zip(inline, parallel):
        _assert_bit_identical(a, b)
