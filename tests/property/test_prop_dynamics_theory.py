"""Property-based tests for the simulator invariants and theory bounds."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theory.pareto import frontier_friendliness, is_feasible_point
from repro.core.theory.theorems import (
    theorem1_efficiency_bound,
    theorem2_friendliness_bound,
    theorem3_friendliness_bound,
)
from repro.model.dynamics import FluidSimulator, SimulationConfig
from repro.model.link import Link
from repro.protocols.aimd import AIMD
from repro.protocols.mimd import MIMD


# ----------------------------------------------------------------------
# Simulator invariants
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    a=st.floats(min_value=0.1, max_value=5.0),
    b=st.floats(min_value=0.1, max_value=0.9),
    n=st.integers(min_value=1, max_value=4),
    bw=st.floats(min_value=5.0, max_value=200.0),
    buffer_mss=st.floats(min_value=1.0, max_value=500.0),
)
def test_aimd_dynamics_invariants(a, b, n, bw, buffer_mss):
    link = Link.from_mbps(bw, 42, buffer_mss)
    sim = FluidSimulator(link, [AIMD(a, b)] * n)
    trace = sim.run(300)
    # Windows stay within the configured clamp.
    assert np.nanmin(trace.windows) >= 1.0 - 1e-9
    assert np.nanmax(trace.windows) < 1e9
    # Loss rates and RTTs stay physical.
    assert (trace.congestion_loss >= 0).all()
    assert (trace.congestion_loss < 1).all()
    assert (trace.rtts >= link.base_rtt - 1e-12).all()


@settings(max_examples=15, deadline=None)
@given(
    a=st.floats(min_value=1.001, max_value=1.2),
    b=st.floats(min_value=0.5, max_value=0.99),
    ratio=st.floats(min_value=1.5, max_value=20.0),
)
def test_mimd_never_equalizes(a, b, ratio):
    # Fluid-model MIMD preserves initial window ratios (0-fairness).
    link = Link.from_mbps(20, 42, 100)
    config = SimulationConfig(initial_windows=[ratio, 1.0], min_window=0.0)
    sim = FluidSimulator(link, [MIMD(a, b)] * 2, config)
    trace = sim.run(400)
    w = trace.windows[-1]
    if w[1] > 0:
        assert w[0] / w[1] >= ratio * 0.99


@settings(max_examples=20, deadline=None)
@given(
    steps=st.integers(min_value=1, max_value=200),
    n=st.integers(min_value=1, max_value=3),
)
def test_trace_shapes_always_consistent(steps, n):
    link = Link.from_mbps(20, 42, 100)
    trace = FluidSimulator(link, [AIMD(1, 0.5)] * n).run(steps)
    assert trace.windows.shape == (steps, n)
    assert trace.total_window().shape == (steps,)
    assert trace.goodput().shape == (steps, n)


# ----------------------------------------------------------------------
# Theory-bound properties
# ----------------------------------------------------------------------
@given(alpha=st.floats(min_value=0.0, max_value=1.0))
def test_theorem1_bound_within_unit_interval(alpha):
    bound = theorem1_efficiency_bound(alpha)
    assert 0.0 <= bound <= 1.0
    assert bound <= alpha + 1e-12  # alpha/(2-alpha) <= alpha on [0, 1]


@given(
    alpha=st.floats(min_value=0.01, max_value=100.0),
    beta=st.floats(min_value=0.0, max_value=1.0),
)
def test_theorem2_bound_nonnegative_and_antitone(alpha, beta):
    bound = theorem2_friendliness_bound(alpha, beta)
    assert bound >= 0.0
    assert theorem2_friendliness_bound(alpha * 2, beta) <= bound + 1e-12
    assert theorem2_friendliness_bound(alpha, min(1.0, beta + 0.1)) <= bound + 1e-12


@given(
    alpha=st.floats(min_value=0.01, max_value=10.0),
    beta=st.floats(min_value=0.0, max_value=1.0),
    eps=st.floats(min_value=1e-4, max_value=0.9),
)
def test_theorem3_always_tighter_than_theorem2(alpha, beta, eps):
    capacity, buffer_size = 70.0, 100.0
    t2 = theorem2_friendliness_bound(alpha, beta)
    t3 = theorem3_friendliness_bound(alpha, beta, eps, capacity, buffer_size)
    # Theorem 3's denominator adds 4(C+tau)/(1-eps) >> alpha, so the cap
    # can only shrink.
    assert t3 <= t2 + 1e-12


@given(
    alpha=st.floats(min_value=0.05, max_value=10.0),
    beta=st.floats(min_value=0.01, max_value=0.99),
)
def test_frontier_points_are_feasible_and_extremal(alpha, beta):
    friendliness = frontier_friendliness(alpha, beta)
    assert is_feasible_point(alpha, beta, friendliness)
    assert not is_feasible_point(alpha, beta, friendliness * 1.01 + 1e-9)
