"""Drivers rerouted through repro.exec stay bit-identical on every lane.

The executor promises that routing — serial loop, process pool, batched
kernel — never changes results. The emulab and FCT drivers already carry
serial-vs-batch identity tests; these cover the remaining rerouted
drivers (Figure 1, Table 2 fluid and packet) across all three lanes.
"""

from __future__ import annotations

import pytest

from repro.core.metrics.base import EstimatorConfig
from repro.experiments.figure1 import run_figure1
from repro.experiments.table2 import run_table2, run_table2_packet


@pytest.fixture(scope="module")
def figure1_kwargs() -> dict:
    return dict(
        alphas=[1.0],
        betas=[0.5],
        empirical_alphas=[0.5, 1.0],
        empirical_betas=[0.5, 0.8],
        config=EstimatorConfig(steps=1500, n_senders=2),
    )


class TestFigure1Lanes:
    @pytest.fixture(scope="class")
    def serial(self, figure1_kwargs):
        return run_figure1(**figure1_kwargs)

    def test_batched_lane(self, figure1_kwargs, serial):
        batched = run_figure1(batch=True, **figure1_kwargs)
        assert batched.empirical == serial.empirical
        assert batched.series() == serial.series()

    def test_pooled_lane(self, figure1_kwargs, serial):
        pooled = run_figure1(workers=2, **figure1_kwargs)
        assert pooled.empirical == serial.empirical


class TestTable2Lanes:
    KWARGS = dict(senders=(2, 3), bandwidths_mbps=(20,), steps=1500)

    @pytest.fixture(scope="class")
    def serial(self):
        return run_table2(**self.KWARGS)

    def test_batched_lane(self, serial):
        batched = run_table2(batch=True, **self.KWARGS)
        assert batched.to_jsonable() == serial.to_jsonable()

    def test_pooled_lane(self, serial):
        pooled = run_table2(workers=2, **self.KWARGS)
        assert pooled.to_jsonable() == serial.to_jsonable()


@pytest.mark.slow
class TestTable2PacketLanes:
    KWARGS = dict(senders=(2,), bandwidths_mbps=(20,), duration=8.0)

    def test_pooled_lane(self):
        serial = run_table2_packet(**self.KWARGS)
        pooled = run_table2_packet(workers=2, **self.KWARGS)
        assert pooled.to_jsonable() == serial.to_jsonable()
