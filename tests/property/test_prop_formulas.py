"""Bit-identity of the shared Section 2 formulas with their historical forms.

``repro.model.formulas`` deduplicates the Eq. (1) RTT and droptail loss
expressions that used to live inline in ``repro.model.link.Link`` and
``repro.netmodel.dynamics``. These tests pin the shared helpers to the
exact float expressions they replaced — ``==`` on floats, no tolerances —
so the dedup can never drift either caller's dynamics.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.model import formulas
from repro.model.link import Link

links = st.builds(
    Link,
    bandwidth=st.floats(min_value=1.0, max_value=1e6),
    theta=st.floats(min_value=1e-4, max_value=1.0),
    buffer_size=st.floats(min_value=0.0, max_value=1e4),
)
windows = st.floats(min_value=0.0, max_value=1e9)
losses = st.floats(min_value=0.0, max_value=1.0, exclude_max=True)


def _historical_loss_rate(link: Link, x: float) -> float:
    # The pre-dedup body of Link.loss_rate.
    if x <= link.pipe_limit:
        return 0.0
    return 1.0 - link.pipe_limit / x


def _historical_rtt(link: Link, x: float) -> float:
    # The pre-dedup body of Link.rtt.
    if x < link.pipe_limit:
        return max(link.base_rtt, (x - link.capacity) / link.bandwidth + link.base_rtt)
    return link.timeout_rtt


def _historical_queue(link: Link, x: float) -> float:
    # The pre-dedup body of Link.queue_occupancy.
    return min(max(0.0, x - link.capacity), link.buffer_size)


def _historical_path_loss(link_losses: list[float]) -> float:
    # The pre-dedup inline loop of NetworkFluidSimulator._run.
    survival = 1.0
    for loss in link_losses:
        survival *= 1.0 - loss
    return 1.0 - survival


@given(link=links, x=windows)
def test_droptail_loss_bit_identical(link, x):
    expected = _historical_loss_rate(link, x)
    assert formulas.droptail_loss_rate(x, link.pipe_limit) == expected
    assert link.loss_rate(x) == expected


@given(link=links, x=windows)
def test_eq1_rtt_bit_identical(link, x):
    expected = _historical_rtt(link, x)
    assert formulas.eq1_rtt(
        x, link.capacity, link.bandwidth, link.base_rtt,
        link.pipe_limit, link.timeout_rtt,
    ) == expected
    assert link.rtt(x) == expected


@given(link=links, x=windows)
def test_queue_occupancy_bit_identical(link, x):
    expected = _historical_queue(link, x)
    assert formulas.queue_occupancy(x, link.capacity, link.buffer_size) == expected
    assert link.queue_occupancy(x) == expected


@given(link=links, x=windows)
def test_queueing_delay_bit_identical(link, x):
    # The pre-dedup netmodel expression: queue occupancy over bandwidth.
    expected = _historical_queue(link, x) / link.bandwidth
    assert formulas.queueing_delay(
        x, link.capacity, link.buffer_size, link.bandwidth
    ) == expected


@given(link_losses=st.lists(losses, min_size=0, max_size=6))
def test_path_loss_bit_identical(link_losses):
    assert formulas.path_loss(link_losses) == _historical_path_loss(link_losses)
