"""Property: the compiled fluid kernel is bit-identical to the NumPy loop.

:mod:`repro.model.kernels` ships a scalar transliteration of the batched
kernel's recurrence that numba compiles when the ``fast`` extra is
installed. The activation contract has three legs, all pinned here:

- the transliteration itself produces the same raw float64 bits as the
  NumPy loop — testable *without* numba by executing the very function
  numba would compile, interpreted (``force_python=True``);
- with numba installed, the compiled execution of that function matches
  too (numba compiles without fastmath, preserving IEEE-754 evaluation
  order) — these tests skip when numba is absent and run on the CI
  ``fast`` leg;
- the escape hatches: ``REPRO_JIT=0`` forces the NumPy loop, and a
  missing numba silently falls back with no behavioural difference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import ScenarioSpec, run_spec, run_specs_batched
from repro.backends.batch import plan_batches
from repro.model import kernels
from repro.model.batch import run_batch_kernel
from repro.model.link import Link
from repro.protocols.aimd import AIMD
from repro.protocols.mimd import MIMD, MimdPccBound
from repro.protocols.robust_aimd import RobustAIMD

_OUT_ARRAYS = ("windows", "observed_loss", "congestion_loss", "rtts")


def _mixed_specs(seed, grid=6, n=3, steps=90, loss_rate=0.0, diverging=False):
    rng = np.random.default_rng(seed)

    def protocol():
        kind = rng.integers(0, 3)
        if kind == 0:
            return AIMD(float(rng.uniform(0.1, 3.0)), float(rng.uniform(0.2, 0.9)))
        if kind == 1:
            return MIMD(float(rng.uniform(1.001, 1.1)), float(rng.uniform(0.5, 0.99)))
        return RobustAIMD(
            float(rng.uniform(0.1, 2.0)),
            float(rng.uniform(0.3, 0.95)),
            float(rng.uniform(0.001, 0.2)),
        )

    specs = [
        ScenarioSpec(
            protocols=[protocol() for _ in range(n)],
            link=Link.from_mbps(float(rng.uniform(5, 150)), 42,
                                float(rng.uniform(10, 300))),
            steps=steps,
            initial_windows=[float(w) for w in rng.uniform(1.0, 40.0, size=n)],
            random_loss_rate=loss_rate,
        )
        for _ in range(grid)
    ]
    if diverging:
        specs.append(ScenarioSpec(
            protocols=[AIMD(1e308, 0.5)] + [MIMD(1.01, 0.9)] * (n - 1),
            link=Link.from_mbps(20, 42, float("inf")),
            steps=steps,
            initial_windows=[1e308] + [1.0] * (n - 1),
            max_window=float("inf"),
        ))
    return specs


def _advance_both(inputs, force_python):
    """Run the NumPy loop and the transliterated loop on one batch."""
    from repro.model.batch import _advance_numpy

    steps, b, n = inputs.steps, inputs.batch_size, inputs.n_senders
    outs = {}
    for which in ("numpy", "cells"):
        out = {
            "windows": np.full((steps, b, n), np.nan),
            "observed_loss": np.empty((steps, b)),
            "congestion_loss": np.empty((steps, b)),
            "rtts": np.empty((steps, b)),
        }
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            current = np.clip(
                inputs.initial,
                inputs.min_window[:, None],
                inputs.max_window[:, None],
            )
            args = (inputs, current, out["windows"], out["observed_loss"],
                    out["congestion_loss"], out["rtts"])
            if which == "numpy":
                out["failed"] = _advance_numpy(*args)
            else:
                out["failed"] = kernels.advance(*args, force_python=force_python)
        outs[which] = out
    return outs["numpy"], outs["cells"]


@pytest.mark.filterwarnings("ignore:overflow encountered")
@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n=st.integers(min_value=1, max_value=4),
    loss_rate=st.floats(min_value=0.0, max_value=0.03),
    diverging=st.booleans(),
)
def test_transliterated_loop_matches_numpy_loop(seed, n, loss_rate, diverging):
    """The scalar loop numba would compile, executed interpreted."""
    specs = _mixed_specs(seed, n=n, loss_rate=loss_rate, diverging=diverging)
    plan = plan_batches(specs)
    assert not plan.fallback
    for group in plan.groups:
        ref, jit = _advance_both(group.inputs, force_python=True)
        assert ref["failed"] == jit["failed"]
        for name in _OUT_ARRAYS:
            assert np.array_equal(
                ref[name].view(np.uint64), jit[name].view(np.uint64)
            ), name


def test_kernel_id_registry():
    assert kernels.kernel_id(AIMD) == 0
    assert kernels.kernel_id(MIMD) == 1
    assert kernels.kernel_id(RobustAIMD) == 2
    # Parameter-only subclasses inherit their base's compiled rule...
    assert kernels.kernel_id(MimdPccBound) == kernels.kernel_id(MIMD)

    # ...but overriding batched_next changes semantics: no compiled rule.
    class Custom(AIMD):
        @staticmethod
        def batched_next(windows, loss_rate, rtt, params):
            return windows

    assert kernels.kernel_id(Custom) is None
    assert not kernels.use_jit((AIMD, Custom))


def test_repro_jit_0_disables_compilation(monkeypatch):
    monkeypatch.setenv("REPRO_JIT", "0")
    assert not kernels.jit_enabled()
    assert not kernels.use_jit((AIMD,))


def test_absent_numba_falls_back_silently(monkeypatch):
    """Without numba the batched path must run (NumPy) and stay correct."""
    monkeypatch.setattr(kernels, "_numba", None)
    monkeypatch.setenv("REPRO_JIT", "1")
    assert kernels.numba_version() is None
    assert not kernels.jit_enabled()
    spec = ScenarioSpec(
        protocols=[AIMD(1.0, 0.5), MIMD(1.01, 0.9)],
        link=Link.from_mbps(20, 42, 100),
        steps=60,
        initial_windows=[1.0, 2.0],
    )
    (trace,) = run_specs_batched([spec], use_cache=False)
    reference = run_spec(spec, "fluid", use_cache=False)
    assert np.array_equal(trace.windows, reference.windows)


# ----------------------------------------------------------------------
# Compiled-execution tests: require the `fast` extra (CI's numba leg).
# ----------------------------------------------------------------------
@pytest.mark.filterwarnings("ignore:overflow encountered")
@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n=st.integers(min_value=1, max_value=4),
    loss_rate=st.floats(min_value=0.0, max_value=0.03),
    diverging=st.booleans(),
)
def test_compiled_loop_matches_numpy_loop(seed, n, loss_rate, diverging):
    pytest.importorskip("numba")
    specs = _mixed_specs(seed, n=n, loss_rate=loss_rate, diverging=diverging)
    for group in plan_batches(specs).groups:
        ref, jit = _advance_both(group.inputs, force_python=False)
        assert ref["failed"] == jit["failed"]
        for name in _OUT_ARRAYS:
            assert np.array_equal(
                ref[name].view(np.uint64), jit[name].view(np.uint64)
            ), name


def test_compiled_end_to_end_bit_identical_to_serial(monkeypatch):
    """run_specs_batched with JIT active equals serial run_spec, bitwise."""
    pytest.importorskip("numba")
    monkeypatch.setenv("REPRO_JIT", "1")
    specs = _mixed_specs(3, grid=8, n=3, steps=120, loss_rate=0.01)
    plan = plan_batches(specs)
    assert kernels.use_jit(plan.groups[0].inputs.class_table)
    batched = run_specs_batched(specs, use_cache=False)
    for spec, trace in zip(specs, batched):
        reference = run_spec(spec, "fluid", use_cache=False)
        for name in ("windows", "observed_loss", "congestion_loss", "rtts"):
            a = np.ascontiguousarray(getattr(trace, name))
            b = np.ascontiguousarray(getattr(reference, name))
            assert np.array_equal(a.view(np.uint64), b.view(np.uint64)), name
