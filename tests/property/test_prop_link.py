"""Property-based tests for the link model (Eq. (1) and droptail loss)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.link import Link

links = st.builds(
    Link,
    bandwidth=st.floats(min_value=1.0, max_value=1e6),
    theta=st.floats(min_value=1e-4, max_value=1.0),
    buffer_size=st.floats(min_value=0.0, max_value=1e4),
)
windows = st.floats(min_value=0.0, max_value=1e9)


@given(link=links, x=windows)
def test_loss_rate_in_unit_interval(link, x):
    assert 0.0 <= link.loss_rate(x) < 1.0


@given(link=links, x=windows)
def test_rtt_at_least_base(link, x):
    assert link.rtt(x) >= link.base_rtt - 1e-12


@given(link=links, x1=windows, x2=windows)
def test_loss_monotone_in_aggregate(link, x1, x2):
    low, high = sorted((x1, x2))
    assert link.loss_rate(low) <= link.loss_rate(high) + 1e-12


@given(link=links, x1=windows, x2=windows)
def test_rtt_monotone_below_pipe(link, x1, x2):
    # Within the no-loss regime Eq. (1) is non-decreasing in X.
    low, high = sorted((x1, x2))
    if high < link.pipe_limit:
        assert link.rtt(low) <= link.rtt(high) + 1e-12


@given(link=links, x=windows)
def test_no_loss_iff_within_pipe(link, x):
    if x <= link.pipe_limit:
        assert link.loss_rate(x) == 0.0
    else:
        assert link.loss_rate(x) > 0.0


@given(link=links, x=windows)
def test_delivered_traffic_never_exceeds_pipe(link, x):
    # X * (1 - L(X)) <= C + tau: the link never carries more than pipe.
    delivered = x * (1.0 - link.loss_rate(x))
    # Relative slack: 1 - pipe/X rounds in double precision for X >> pipe.
    assert delivered <= link.pipe_limit + 1e-7 * max(1.0, x)


@given(link=links, x=windows)
def test_queue_occupancy_bounded(link, x):
    occupancy = link.queue_occupancy(x)
    assert 0.0 <= occupancy <= link.buffer_size


@given(link=links)
def test_capacity_consistency(link):
    assert link.capacity == link.bandwidth * link.base_rtt
    assert link.pipe_limit == link.capacity + link.buffer_size


ecn_links = st.builds(
    lambda bandwidth, theta, buffer_size, k_fraction: Link(
        bandwidth=bandwidth,
        theta=theta,
        buffer_size=buffer_size,
        ecn_threshold=k_fraction * buffer_size,
    ),
    bandwidth=st.floats(min_value=1.0, max_value=1e6),
    theta=st.floats(min_value=1e-4, max_value=1.0),
    buffer_size=st.floats(min_value=1.0, max_value=1e4),
    k_fraction=st.floats(min_value=0.0, max_value=1.0),
)


@given(link=ecn_links, x=windows)
def test_mark_fraction_in_unit_interval(link, x):
    assert 0.0 <= link.mark_fraction(x) <= 1.0


@given(link=ecn_links, x1=windows, x2=windows)
def test_mark_fraction_monotone_up_to_pipe(link, x1, x2):
    # Below the pipe, more load can only mean more marked traffic.
    low, high = sorted((x1, x2))
    if high <= link.pipe_limit:
        assert link.mark_fraction(low) <= link.mark_fraction(high) + 1e-12


@given(link=ecn_links, x=windows)
def test_marks_start_strictly_before_loss(link, x):
    # Whenever the link drops, it is also marking (K < tau). Guard in the
    # same float arithmetic as mark_fraction: when K is within one ulp of
    # tau, C + K can round up to the pipe limit and marking vanishes.
    marking_below_pipe = link.capacity + link.ecn_threshold < link.pipe_limit
    if link.loss_rate(x) > 0.0 and marking_below_pipe:
        assert link.mark_fraction(x) > 0.0
