"""Property tests for the mean-field density kernel and RED marking.

Two invariant families:

- the density kernel conserves total probability (within 1e-12 over long
  horizons) and never produces negative or non-finite mass, under any
  CFL-respecting step (the kernel is an explicit transport of existing
  mass, so *every* step respects it by construction);
- the RED ramp degenerates to the historical step ``mark_fraction``
  bit-identically when ``min_th == max_th``, so DCTCP's step-marking
  scenarios are unaffected by the new knobs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.meanfield.dynamics import (
    MeanFieldGroup,
    MeanFieldScenario,
    MeanFieldSimulator,
)
from repro.meanfield.grid import WindowGrid
from repro.meanfield.kernel import (
    meanfield_deposit,
    meanfield_plan,
    meanfield_step,
)
from repro.model.formulas import red_mark_fraction, step_mark_fraction
from repro.model.link import Link
from repro.protocols.aimd import AIMD
from repro.protocols.robust_aimd import RobustAIMD

MASS_ATOL = 1e-12

grids = st.builds(
    WindowGrid,
    lo=st.floats(min_value=0.0, max_value=4.0),
    hi=st.floats(min_value=16.0, max_value=512.0),
    cells=st.integers(min_value=2, max_value=257),
)


@st.composite
def plans_and_mass(draw):
    grid = draw(grids)
    n = draw(st.integers(min_value=1, max_value=64))
    # Positions may lie well outside the grid: the plan clips to the edges.
    positions = draw(
        st.lists(
            st.floats(min_value=-10.0, max_value=1000.0),
            min_size=n,
            max_size=n,
        )
    )
    mass = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=n, max_size=n
        )
    )
    return grid, np.asarray(positions), np.asarray(mass)


@given(data=plans_and_mass())
def test_deposit_conserves_mass_and_nonnegative(data):
    grid, positions, mass = data
    out = meanfield_deposit(meanfield_plan(positions, grid), mass)
    assert out.shape == (grid.cells,)
    assert (out >= 0.0).all()
    assert abs(out.sum() - mass.sum()) <= 1e-12 * max(1.0, mass.sum())


@given(data=plans_and_mass(), p=st.floats(min_value=0.0, max_value=1.0))
def test_step_conserves_mass_and_nonnegative(data, p):
    grid, positions, mass = data
    points = grid.points()
    growth = meanfield_plan(points + 1.0, grid)
    decrease = meanfield_plan(points * 0.5, grid)
    start = meanfield_deposit(meanfield_plan(positions, grid), mass)
    out = meanfield_step(start, p, growth, decrease)
    assert (out >= 0.0).all()
    assert abs(out.sum() - start.sum()) <= 1e-12 * max(1.0, start.sum())


@pytest.mark.parametrize("synchronized", [True, False])
@pytest.mark.parametrize(
    "protocol", [AIMD(1, 0.5), RobustAIMD(1, 0.8, 0.01)], ids=["aimd", "raimd"]
)
def test_long_horizon_mass_conservation(synchronized, protocol):
    """Total probability stays 1 within 1e-12 over a long simulated horizon."""
    link = Link.from_mbps(20, 42, 100)
    scenario = MeanFieldScenario(
        link=link,
        groups=[MeanFieldGroup(protocol=protocol, population=50)],
        steps=4000,
        synchronized=synchronized,
        random_loss_rate=0.002,
    )
    result = MeanFieldSimulator(scenario).run()
    for mass in result.masses:
        assert (mass >= 0.0).all()
        assert np.isfinite(mass).all()
        assert abs(mass.sum() - 1.0) <= MASS_ATOL
    assert np.isfinite(result.mean_windows).all()
    assert (result.mean_windows >= scenario.min_window - 1e-12).all()


def test_sanitizer_trips_on_corrupted_mass():
    """The REPRO_DEBUG_CHECKS observer catches a non-conserving density."""
    from repro import debug

    link = Link.from_mbps(20, 42, 100)
    scenario = MeanFieldScenario(
        link=link, groups=[MeanFieldGroup(protocol=AIMD(1, 0.5), population=10)],
        steps=5,
    )
    sim = MeanFieldSimulator(scenario)
    sim._groups[0].mass = sim._groups[0].mass * 0.5  # leak half the mass
    with debug.checks(True), pytest.raises(debug.DebugCheckError):
        sim.run()


# ----------------------------------------------------------------------
# RED satellite: the ramp must reduce to the step policy bit-identically.
# ----------------------------------------------------------------------
red_links = st.builds(
    lambda bw, theta, buf: (bw, theta, buf),
    bw=st.floats(min_value=1.0, max_value=1e5),
    theta=st.floats(min_value=1e-3, max_value=0.5),
    buf=st.floats(min_value=1.0, max_value=1e4),
)


@given(
    params=red_links,
    threshold_frac=st.floats(min_value=0.0, max_value=1.0),
    x=st.floats(min_value=0.0, max_value=1e7),
)
@settings(max_examples=200)
def test_degenerate_red_is_bit_identical_to_step(params, threshold_frac, x):
    bw, theta, buf = params
    threshold = threshold_frac * buf
    step_link = Link(
        bandwidth=bw, theta=theta, buffer_size=buf, ecn_threshold=threshold
    )
    red_link = Link(
        bandwidth=bw,
        theta=theta,
        buffer_size=buf,
        red_min_threshold=threshold,
        red_max_threshold=threshold,
    )
    step = step_link.mark_fraction(x)
    red = red_link.mark_fraction(x)
    # Bit identity, not approximate equality: DCTCP traces keyed on the
    # step policy must be unaffected by expressing it as a degenerate ramp.
    assert step == red
    assert np.float64(step).tobytes() == np.float64(red).tobytes()


@given(
    params=red_links,
    threshold_frac=st.floats(min_value=0.0, max_value=1.0),
    x=st.floats(min_value=0.0, max_value=1e7),
)
@settings(max_examples=200)
def test_degenerate_red_formula_matches_step_formula(params, threshold_frac, x):
    bw, theta, buf = params
    link = Link(bandwidth=bw, theta=theta, buffer_size=buf)
    threshold = threshold_frac * buf
    step = step_mark_fraction(x, link.capacity, link.pipe_limit, threshold)
    red = red_mark_fraction(
        x, link.capacity, link.pipe_limit, threshold, threshold
    )
    assert np.float64(step).tobytes() == np.float64(red).tobytes()


@given(
    params=red_links,
    fracs=st.tuples(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    ),
    max_mark=st.floats(min_value=0.01, max_value=1.0),
    gentle=st.booleans(),
    x=st.floats(min_value=0.0, max_value=1e7),
)
@settings(max_examples=200)
def test_red_mark_fraction_is_a_rate(params, fracs, max_mark, gentle, x):
    bw, theta, buf = params
    link = Link(bandwidth=bw, theta=theta, buffer_size=buf)
    lo, hi = sorted(f * buf for f in fracs)
    marked = red_mark_fraction(
        x, link.capacity, link.pipe_limit, lo, hi, max_mark, gentle
    )
    assert 0.0 <= marked <= 1.0


@given(
    params=red_links,
    fracs=st.tuples(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    ),
    x1=st.floats(min_value=0.0, max_value=1e7),
    x2=st.floats(min_value=0.0, max_value=1e7),
)
@settings(max_examples=200)
def test_red_marked_traffic_monotone_in_aggregate(params, fracs, x1, x2):
    """Marked *traffic* (fraction times X) never shrinks as X grows."""
    bw, theta, buf = params
    link = Link(bandwidth=bw, theta=theta, buffer_size=buf)
    lo, hi = sorted(f * buf for f in fracs)
    low, high = sorted((x1, x2))
    marked_low = low * red_mark_fraction(
        low, link.capacity, link.pipe_limit, lo, hi
    )
    marked_high = high * red_mark_fraction(
        high, link.capacity, link.pipe_limit, lo, hi
    )
    assert marked_low <= marked_high + 1e-7 * max(1.0, high)
