"""Property: the batched mean-field kernel is bit-identical to the serial engine.

Same contract as ``test_prop_batch.py``, one level up the abstraction
ladder: stacking compatible density scenarios into one ``(batch, cells)``
mass array and advancing them together must reproduce, scenario for
scenario, the exact float64 bits of the serial
``run_spec(spec, "meanfield")`` path. The ``force_python=True`` variant
executes the scalar scatter numba would compile (``kernels.deposit``)
interpreted, pinning the JIT rendering without numba installed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import ScenarioSpec, run_spec
from repro.backends.batch import (
    plan_meanfield_batches,
    run_meanfield_specs_batched,
)
from repro.meanfield.batch import run_meanfield_batch_kernel
from repro.protocols.aimd import AIMD
from repro.protocols.mimd import MIMD
from repro.protocols.robust_aimd import RobustAIMD

_TRACE_ARRAYS = ("windows", "observed_loss", "congestion_loss", "rtts")

_KERNEL_ARRAYS = ("mean_windows", "observed_loss", "congestion_loss", "rtts")


def _assert_bit_identical(batched, serial):
    for name in _TRACE_ARRAYS:
        a = np.ascontiguousarray(getattr(batched, name))
        b = np.ascontiguousarray(getattr(serial, name))
        assert a.shape == b.shape, name
        # view(uint64) compares exact bit patterns; NaN == NaN included.
        assert np.array_equal(a.view(np.uint64), b.view(np.uint64)), name


def _check_sweep(specs):
    batched = run_meanfield_specs_batched(specs, use_cache=False)
    for spec, trace in zip(specs, batched):
        _assert_bit_identical(
            trace, run_spec(spec, "meanfield", use_cache=False)
        )


def _protocol(rng):
    kind = rng.integers(0, 3)
    if kind == 0:
        return AIMD(float(rng.uniform(0.1, 3.0)), float(rng.uniform(0.2, 0.9)))
    if kind == 1:
        return MIMD(float(rng.uniform(1.001, 1.1)), float(rng.uniform(0.5, 0.99)))
    return RobustAIMD(
        float(rng.uniform(0.1, 2.0)),
        float(rng.uniform(0.3, 0.95)),
        float(rng.uniform(0.001, 0.2)),
    )


def _sweep_specs(seed, grid=5, steps=150, unsynchronized=False, loss_rate=0.0):
    """One population per scenario (the batch-eligible shape), varied link."""
    rng = np.random.default_rng(seed)
    return [
        ScenarioSpec.from_mbps(
            float(rng.uniform(5, 150)), 42, float(rng.uniform(20, 300)),
            [_protocol(rng)],
            steps=steps,
            flow_multiplicity=int(rng.integers(2, 50)),
            unsynchronized_loss=unsynchronized,
            random_loss_rate=loss_rate,
        )
        for _ in range(grid)
    ]


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    steps=st.integers(min_value=16, max_value=250),
)
def test_synchronized_sweep_bit_identical(seed, steps):
    specs = _sweep_specs(seed, steps=steps)
    _check_sweep(specs)


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    loss_rate=st.floats(min_value=0.0, max_value=0.03),
)
def test_unsynchronized_sweep_with_random_loss_bit_identical(seed, loss_rate):
    specs = _sweep_specs(
        seed, grid=4, steps=120, unsynchronized=True, loss_rate=loss_rate
    )
    _check_sweep(specs)


def test_mixed_feedback_modes_split_into_groups():
    """Sync and unsync scenarios batch separately but all stay identical."""
    sync = _sweep_specs(3, grid=3, steps=100)
    unsync = _sweep_specs(4, grid=2, steps=100, unsynchronized=True)
    specs = sync + unsync
    plan = plan_meanfield_batches(specs)
    assert not plan.fallback
    assert len(plan.groups) >= 2
    _check_sweep(specs)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    unsynchronized=st.booleans(),
    loss_rate=st.floats(min_value=0.0, max_value=0.03),
)
def test_transliterated_scatter_matches_numpy_scatter(
    seed, unsynchronized, loss_rate
):
    """The scalar deposit loop numba would compile, executed interpreted."""
    specs = _sweep_specs(
        seed, grid=4, steps=100, unsynchronized=unsynchronized,
        loss_rate=loss_rate,
    )
    plan = plan_meanfield_batches(specs)
    assert not plan.fallback
    for group in plan.groups:
        ref = run_meanfield_batch_kernel(group.inputs)
        jit = run_meanfield_batch_kernel(group.inputs, force_python=True)
        assert ref.failed == jit.failed
        for name in _KERNEL_ARRAYS:
            a = getattr(ref, name)
            b = getattr(jit, name)
            assert np.array_equal(a.view(np.uint64), b.view(np.uint64)), name
        assert np.array_equal(
            ref.masses.view(np.uint64), jit.masses.view(np.uint64)
        )
