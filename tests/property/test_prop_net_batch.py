"""Property: the batched network kernel is bit-identical to the serial engine.

The contract mirrors ``test_prop_batch.py`` for the multi-link backend:
for every batch-eligible grid of topology scenarios, the stacked
``(batch, flows)`` kernel must produce, spec for spec, exactly the
float64 arrays the serial ``run_spec(spec, "network")`` path produces —
raw bit patterns, not tolerances. The same property, with
``force_python=True``, pins the scalar transliteration numba would
compile (``kernels.advance_network``) to the NumPy loop, which is how
environments without numba verify the JIT rendering.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import ScenarioSpec, run_spec
from repro.backends.batch import (
    plan_network_batches,
    run_network_specs_batched,
)
from repro.model.link import Link
from repro.netmodel.batch import run_network_batch_kernel
from repro.netmodel.topology import dumbbell, parking_lot, single_link
from repro.protocols.aimd import AIMD
from repro.protocols.mimd import MIMD
from repro.protocols.robust_aimd import RobustAIMD

_TRACE_ARRAYS = (
    "windows",
    "observed_loss",
    "congestion_loss",
    "rtts",
    "flow_rtts",
    "base_rtts",
)

_KERNEL_ARRAYS = ("windows", "flow_loss", "flow_rtts", "link_load", "link_loss")


def _assert_bit_identical(batched, serial):
    for name in _TRACE_ARRAYS:
        a = np.ascontiguousarray(getattr(batched, name))
        b = np.ascontiguousarray(getattr(serial, name))
        assert a.shape == b.shape, name
        # view(uint64) compares exact bit patterns; NaN == NaN included.
        assert np.array_equal(a.view(np.uint64), b.view(np.uint64)), name


def _check_grid(specs, **kwargs):
    batched = run_network_specs_batched(specs, use_cache=False, **kwargs)
    for spec, trace in zip(specs, batched):
        _assert_bit_identical(trace, run_spec(spec, "network", use_cache=False))


def _protocol(rng):
    kind = rng.integers(0, 3)
    if kind == 0:
        return AIMD(float(rng.uniform(0.1, 3.0)), float(rng.uniform(0.2, 0.9)))
    if kind == 1:
        return MIMD(float(rng.uniform(1.001, 1.1)), float(rng.uniform(0.5, 0.99)))
    return RobustAIMD(
        float(rng.uniform(0.1, 2.0)),
        float(rng.uniform(0.3, 0.95)),
        float(rng.uniform(0.001, 0.2)),
    )


def _dumbbell_specs(seed, grid=4, n=3, steps=100, loss_rate=0.0):
    rng = np.random.default_rng(seed)
    specs = []
    for _ in range(grid):
        bottleneck = Link.from_mbps(float(rng.uniform(5, 150)), 42,
                                    float(rng.uniform(10, 300)))
        access = Link.from_mbps(float(rng.uniform(200, 500)), 10, 200)
        specs.append(ScenarioSpec(
            protocols=[_protocol(rng) for _ in range(n)],
            link=bottleneck, steps=steps,
            topology=dumbbell(access, bottleneck, n),
            initial_windows=[float(w) for w in rng.uniform(1.0, 40.0, size=n)],
            random_loss_rate=loss_rate,
        ))
    return specs


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n=st.integers(min_value=1, max_value=4),
    steps=st.integers(min_value=16, max_value=150),
)
def test_dumbbell_grid_bit_identical(seed, n, steps):
    specs = _dumbbell_specs(seed, n=n, steps=steps)
    # Same flow/link structure and horizon — the whole grid is one batch.
    plan = plan_network_batches(specs)
    assert not plan.fallback
    assert [len(g.indices) for g in plan.groups] == [len(specs)]
    _check_grid(specs)


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    loss_rate=st.floats(min_value=0.0, max_value=0.03),
)
def test_parking_lot_with_random_loss_bit_identical(seed, loss_rate):
    rng = np.random.default_rng(seed)
    specs = []
    for _ in range(4):
        link = Link.from_mbps(float(rng.uniform(10, 100)), 42, 100)
        specs.append(ScenarioSpec(
            protocols=[_protocol(rng) for _ in range(4)],
            link=link, steps=80,
            topology=parking_lot(link, 3),
            initial_windows=[float(w) for w in rng.uniform(1.0, 30.0, size=4)],
            random_loss_rate=loss_rate,
        ))
    _check_grid(specs)


def test_single_link_topology_matches_serial():
    rng = np.random.default_rng(5)
    link = Link.from_mbps(20, 42, 100)
    specs = [
        ScenarioSpec(
            protocols=[AIMD(1.0, 0.5), MIMD(1.01, 0.9)],
            link=link, steps=120,
            topology=single_link(link, 2),
            initial_windows=[1.0, float(rng.uniform(1.0, 30.0))],
        )
        for _ in range(3)
    ]
    _check_grid(specs)


def test_shared_memory_scheduler_matches_inline_kernel():
    """workers>1 routes through the shm chunk scheduler; same bits out."""
    specs = _dumbbell_specs(11, grid=12, n=2, steps=60)
    inline = run_network_specs_batched(specs, use_cache=False)
    parallel = run_network_specs_batched(
        specs, use_cache=False, workers=2, chunk_rows=3
    )
    for a, b in zip(inline, parallel):
        _assert_bit_identical(a, b)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n=st.integers(min_value=1, max_value=4),
    loss_rate=st.floats(min_value=0.0, max_value=0.03),
)
def test_transliterated_loop_matches_numpy_loop(seed, n, loss_rate):
    """The scalar loop numba would compile, executed interpreted."""
    specs = _dumbbell_specs(seed, n=n, steps=80, loss_rate=loss_rate)
    plan = plan_network_batches(specs)
    assert not plan.fallback
    for group in plan.groups:
        ref = run_network_batch_kernel(group.inputs)
        jit = run_network_batch_kernel(group.inputs, force_python=True)
        assert ref.failed == jit.failed
        for name in _KERNEL_ARRAYS:
            a = getattr(ref, name)
            b = getattr(jit, name)
            assert np.array_equal(a.view(np.uint64), b.view(np.uint64)), name
