"""Property-based tests for the multi-link network model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.dynamics import FluidSimulator, SimulationConfig
from repro.model.link import Link
from repro.netmodel import NetworkFluidSimulator, parking_lot, single_link
from repro.protocols.aimd import AIMD

link_params = st.fixed_dictionaries(
    {
        "bw": st.floats(min_value=5.0, max_value=100.0),
        "buffer_mss": st.floats(min_value=1.0, max_value=200.0),
        "a": st.floats(min_value=0.25, max_value=3.0),
        "b": st.floats(min_value=0.2, max_value=0.9),
        "n": st.integers(min_value=1, max_value=3),
    }
)


@settings(max_examples=15, deadline=None)
@given(params=link_params)
def test_single_link_reduction_is_exact(params):
    """The network model on one link IS the paper's base model."""
    link = Link.from_mbps(params["bw"], 42, params["buffer_mss"])
    protocols = [AIMD(params["a"], params["b"])] * params["n"]
    reference = FluidSimulator(
        link, protocols, SimulationConfig(initial_windows=[1.0] * params["n"])
    ).run(200)
    network = NetworkFluidSimulator(
        single_link(link, params["n"]), protocols,
        initial_windows=[1.0] * params["n"],
    ).run(200)
    np.testing.assert_allclose(network.windows, reference.windows)
    np.testing.assert_allclose(network.flow_loss, reference.observed_loss)


@settings(max_examples=15, deadline=None)
@given(
    params=link_params,
    hops=st.integers(min_value=2, max_value=4),
)
def test_parking_lot_invariants(params, hops):
    link = Link.from_mbps(params["bw"], 42, params["buffer_mss"])
    topo = parking_lot(link, hops)
    sim = NetworkFluidSimulator(
        topo, [AIMD(params["a"], params["b"])] * topo.n_flows
    )
    trace = sim.run(250)
    # Physicality: loss in [0, 1), RTT at least the propagation floor,
    # per-link load equals the sum of the windows crossing it.
    assert (trace.flow_loss >= 0).all() and (trace.flow_loss < 1).all()
    assert (trace.flow_rtts >= trace.base_rtts[None, :] - 1e-12).all()
    long_flow_load = trace.windows[:, 0]
    for hop in range(hops):
        short_flow = trace.windows[:, 1 + hop]
        np.testing.assert_allclose(
            trace.link_load[:, hop], long_flow_load + short_flow
        )
    # The long flow's loss is never below any of its hops' losses.
    per_hop_max = trace.link_loss.max(axis=1)
    assert (trace.flow_loss[:, 0] >= per_hop_max - 1e-12).all()


@settings(max_examples=10, deadline=None)
@given(params=link_params)
def test_network_model_deterministic(params):
    link = Link.from_mbps(params["bw"], 42, params["buffer_mss"])
    topo = parking_lot(link, 2)

    def run():
        sim = NetworkFluidSimulator(
            topo, [AIMD(params["a"], params["b"])] * topo.n_flows
        )
        return sim.run(100).windows

    np.testing.assert_array_equal(run(), run())
