"""Property: merged-scheduler packet batching is bit-identical to serial.

:mod:`repro.packetsim.batch` runs many replications inside one event
loop with shared rails and a shared packet pool. The contract mirrors
the fluid batch kernel's: for every replication, every statistic the
serial engine produces — packet counters, ACK/loss/RTT sample lists,
window samples, queue counters, occupancy rings, even the processed
event count — must come out *identical* (float comparisons are exact:
the merged loop executes the same handlers at the same times in the same
per-replication order). That is what lets ``repro fct --batch`` and
``repro emulab --batch`` substitute for their serial loops, and lets
batched runs warm the very cache entries serial runs read.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.link import Link
from repro.packetsim.batch import (
    _BlockRandom,
    run_scenarios_batched,
    run_workloads_batched,
)
from repro.packetsim.scenario import PacketScenario, run_scenario
from repro.packetsim.workload import poisson_workload, run_workload
from repro.perf.cache import cache_enabled
from repro.protocols import presets
from repro.protocols.mimd import MIMD
from repro.protocols.robust_aimd import RobustAIMD


def _assert_flow_stats_equal(merged, serial):
    assert merged.packets_sent == serial.packets_sent
    assert merged.packets_acked == serial.packets_acked
    assert merged.packets_lost == serial.packets_lost
    assert merged.rounds_completed == serial.rounds_completed
    assert merged.retransmissions == serial.retransmissions
    assert merged.completed_at == serial.completed_at
    # Exact float equality: same events at the same times, no tolerances.
    assert merged.ack_times == serial.ack_times
    assert merged.loss_times == serial.loss_times
    assert merged.rtt_samples == serial.rtt_samples
    assert merged.window_samples == serial.window_samples


def _assert_results_equal(merged, serial):
    assert merged.duration == serial.duration
    assert merged.events == serial.events
    assert len(merged.flows) == len(serial.flows)
    for m, s in zip(merged.flows, serial.flows):
        _assert_flow_stats_equal(m, s)
    assert merged.queue.enqueued == serial.queue.enqueued
    assert merged.queue.dropped == serial.queue.dropped
    assert merged.queue.departed == serial.queue.departed
    assert merged.queue.max_occupancy == serial.queue.max_occupancy
    assert merged.queue.occupancy_samples == serial.queue.occupancy_samples


def _protocol(rng):
    kind = rng.integers(0, 3)
    if kind == 0:
        return presets.reno()
    if kind == 1:
        return MIMD(float(rng.uniform(1.001, 1.05)), float(rng.uniform(0.6, 0.95)))
    return RobustAIMD(1.0, 0.8, float(rng.uniform(0.001, 0.05)))


def _scenarios(seed, count, link, duration, lossy):
    rng = np.random.default_rng(seed)
    out = []
    for index in range(count):
        n = int(rng.integers(1, 4))
        out.append(
            PacketScenario(
                link=link,
                protocols=[_protocol(rng) for _ in range(n)],
                duration=duration,
                random_loss_rate=float(rng.uniform(0.0, 0.05)) if lossy else 0.0,
                seed=int(rng.integers(0, 2**31)),
                start_times=[float(i) * 0.5 for i in range(n)]
                if index % 2 else None,
                sample_queue=bool(index % 3 == 0),
            )
        )
    return out


@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    count=st.integers(min_value=1, max_value=5),
    lossy=st.booleans(),
)
def test_merged_scenarios_bit_identical_to_serial(seed, count, lossy):
    """One merge group: same link and duration across all replications."""
    link = Link.from_mbps(12, 42, 60)
    scenarios = _scenarios(seed, count, link, duration=3.0, lossy=lossy)
    merged = run_scenarios_batched(scenarios, use_cache=False)
    for scenario, result in zip(scenarios, merged):
        _assert_results_equal(result, run_scenario(scenario, use_cache=False))


def test_mixed_links_split_into_merge_groups_in_submission_order():
    """Different bandwidths cannot share rails; results stay in order."""
    rng = np.random.default_rng(3)
    scenarios = []
    for mbps in (10, 20, 10, 30, 20, 10):
        scenarios.extend(
            _scenarios(int(rng.integers(0, 2**16)), 1,
                       Link.from_mbps(mbps, 42, 50), duration=2.0, lossy=True)
        )
    merged = run_scenarios_batched(scenarios, use_cache=False)
    assert len(merged) == len(scenarios)
    for scenario, result in zip(scenarios, merged):
        assert result.scenario is scenario
        _assert_results_equal(result, run_scenario(scenario, use_cache=False))


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    draws=st.lists(st.integers(min_value=0, max_value=700), min_size=1,
                   max_size=4),
)
def test_block_random_matches_scalar_generator_stream(seed, draws):
    """Block-served draws equal scalar ``.random()`` calls, bit for bit."""
    blocked = _BlockRandom(seed)
    scalar = np.random.default_rng(seed)
    for count in draws:
        for _ in range(count):
            a = blocked.random()
            b = scalar.random()
            assert np.float64(a).view(np.uint64) == np.float64(b).view(np.uint64)


@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    jobs=st.integers(min_value=1, max_value=4),
)
def test_merged_workloads_bit_identical_to_serial(seed, jobs):
    link = Link.from_mbps(15, 42, 60)
    duration = 6.0
    backgrounds = [[], [presets.reno()], [presets.robust_aimd_paper()]]
    job_list = []
    for rep in range(jobs):
        specs = poisson_workload(
            rate_per_s=2.0, mean_size=30, duration=4.0,
            protocol=presets.reno(), seed=seed + rep,
        )
        job_list.append((specs, backgrounds[rep % len(backgrounds)]))
    merged = run_workloads_batched(link, job_list, duration, use_cache=False)
    for (specs, background), result in zip(job_list, merged):
        serial = run_workload(
            link, specs, duration, background=background, use_cache=False
        )
        assert result.duration == serial.duration
        assert len(result.flows) == len(serial.flows) == len(specs)
        for m, s in zip(result.flows, serial.flows):
            _assert_flow_stats_equal(m, s)


def test_batched_runs_warm_the_serial_cache(tmp_path):
    """Cache entries are interchangeable in both directions."""
    link = Link.from_mbps(10, 42, 50)
    scenarios = _scenarios(11, 3, link, duration=2.0, lossy=True)
    with cache_enabled(tmp_path) as cache:
        batched = run_scenarios_batched(scenarios)
        assert cache.misses == len(scenarios)
        # Serial reads what the batch stored: no new simulation, pure hits.
        for scenario, expected in zip(scenarios, batched):
            _assert_results_equal(run_scenario(scenario), expected)
        assert cache.hits == len(scenarios)
        # And a second batched call is served entirely from the cache.
        again = run_scenarios_batched(scenarios)
        assert cache.hits == 2 * len(scenarios)
        for expected, result in zip(batched, again):
            _assert_results_equal(result, expected)


def test_workload_validations_match_serial():
    link = Link.from_mbps(10, 42, 50)
    specs = poisson_workload(2.0, 20, 3.0, presets.reno(), seed=1)
    with pytest.raises(ValueError, match="duration"):
        run_workloads_batched(link, [(specs, [])], duration=0.0)
    with pytest.raises(ValueError, match="at least one flow"):
        run_workloads_batched(link, [([], [])], duration=5.0)
    late = [s for s in specs]
    with pytest.raises(ValueError, match="never runs"):
        run_workloads_batched(link, [(late, [])], duration=late[0].start_time)
