"""Property-based tests for the packet-level simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packetsim.scenario import PacketScenario, run_scenario
from repro.packetsim.workload import FlowSpec, run_workload
from repro.model.link import Link
from repro.protocols.aimd import AIMD

scenario_params = st.fixed_dictionaries(
    {
        "bandwidth_mbps": st.sampled_from([5, 10, 20]),
        "buffer_mss": st.integers(min_value=2, max_value=60),
        "n_flows": st.integers(min_value=1, max_value=3),
        "a": st.floats(min_value=0.5, max_value=2.0),
        "b": st.floats(min_value=0.3, max_value=0.9),
        "seed": st.integers(min_value=0, max_value=10),
    }
)


@settings(max_examples=12, deadline=None)
@given(params=scenario_params)
def test_packet_conservation(params):
    """sent == acked + lost + in-flight, per flow, in every scenario."""
    scenario = PacketScenario.from_mbps(
        params["bandwidth_mbps"], 42, params["buffer_mss"],
        [AIMD(params["a"], params["b"])] * params["n_flows"],
        duration=4.0, seed=params["seed"],
    )
    result = run_scenario(scenario)
    for flow in result.flows:
        in_flight = flow.packets_sent - flow.packets_acked - flow.packets_lost
        assert in_flight >= 0
        # In-flight is bounded by the pipe plus loss-notification slack.
        assert in_flight <= scenario.link.pipe_limit + 64

    # Link-level conservation: queue counters match flow counters.
    total_sent = sum(f.packets_sent for f in result.flows)
    assert result.queue.enqueued + result.queue.dropped == total_sent


@settings(max_examples=12, deadline=None)
@given(params=scenario_params)
def test_loss_rates_and_rtts_physical(params):
    scenario = PacketScenario.from_mbps(
        params["bandwidth_mbps"], 42, params["buffer_mss"],
        [AIMD(params["a"], params["b"])] * params["n_flows"],
        duration=4.0, seed=params["seed"],
    )
    result = run_scenario(scenario)
    base = scenario.link.base_rtt
    max_rtt = base + (params["buffer_mss"] + 1) / scenario.link.bandwidth
    for flow in result.flows:
        assert 0.0 <= flow.loss_rate <= 1.0
        for rtt in flow.rtt_samples:
            assert base - 1e-9 <= rtt <= max_rtt + 1e-9


@settings(max_examples=10, deadline=None)
@given(
    size=st.integers(min_value=5, max_value=300),
    buffer_mss=st.integers(min_value=3, max_value=50),
)
def test_finite_flows_deliver_exactly_their_payload(size, buffer_mss):
    """A finite flow ACKs at least `size` packets and then stops sending."""
    link = Link.from_mbps(10, 42, buffer_mss)
    result = run_workload(
        link, [FlowSpec(0.0, size, AIMD(1, 0.5))], duration=90.0
    )
    stats = result.flows[0]
    assert stats.completed_at is not None
    assert stats.packets_acked >= size
    # Everything sent is payload or a retransmission of lost payload.
    assert stats.packets_sent <= size + stats.retransmissions + 1


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100))
def test_determinism_across_seeds(seed):
    """The same seed yields the same outcome (and is used only for loss)."""

    def run():
        scenario = PacketScenario.from_mbps(
            10, 42, 20, [AIMD(1, 0.5)] * 2, duration=3.0,
            random_loss_rate=0.01, seed=seed,
        )
        result = run_scenario(scenario)
        return [(f.packets_sent, f.packets_acked, f.packets_lost)
                for f in result.flows]

    assert run() == run()
