"""Property: the optimised packet simulator is bit-identical to the seed.

The slotted engine, rails, packet pool and round-record freelist are pure
performance work — every statistic must match the frozen pre-refactor
reference (``reference_packetsim``) *bit for bit*, not approximately.
Float arrays are compared as raw uint64 patterns so even a last-ulp
divergence (a reordered addition, a changed RNG draw) fails loudly.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packetsim.scenario import PacketScenario, run_scenario
from repro.protocols import presets

from reference_packetsim import reference_run_scenario


def _bits(values) -> list[int]:
    array = np.asarray(values, dtype=np.float64)
    return array.reshape(-1).view(np.uint64).tolist()


def assert_scenario_matches_reference(scenario: PacketScenario) -> None:
    ref_flows, ref_queue, ref_events = reference_run_scenario(scenario)
    result = run_scenario(scenario, use_cache=False)

    assert result.events == ref_events
    assert result.queue.enqueued == ref_queue.enqueued
    assert result.queue.dropped == ref_queue.dropped
    assert result.queue.departed == ref_queue.departed
    assert result.queue.max_occupancy == ref_queue.max_occupancy

    for stats, ref in zip(result.flows, ref_flows, strict=True):
        assert stats.packets_sent == ref.packets_sent
        assert stats.packets_acked == ref.packets_acked
        assert stats.packets_lost == ref.packets_lost
        assert stats.rounds_completed == ref.rounds_completed
        assert _bits(stats.ack_times) == _bits(ref.ack_times)
        assert _bits(stats.loss_times) == _bits(ref.loss_times)
        assert _bits(stats.rtt_samples) == _bits(ref.rtt_samples)
        assert _bits(stats.window_samples) == _bits(ref.window_samples)


PROTOCOL_FACTORIES = {
    "aimd": presets.reno,
    "cubic": presets.cubic,
    "robust-aimd": presets.robust_aimd_paper,
}


@pytest.mark.parametrize("name", sorted(PROTOCOL_FACTORIES))
def test_homogeneous_pair_matches_reference(name):
    factory = PROTOCOL_FACTORIES[name]
    scenario = PacketScenario.from_mbps(
        20, 42, 100, [factory(), factory()], duration=10.0
    )
    assert_scenario_matches_reference(scenario)


@pytest.mark.parametrize("name", sorted(PROTOCOL_FACTORIES))
def test_mixed_with_reno_matches_reference(name):
    factory = PROTOCOL_FACTORIES[name]
    scenario = PacketScenario.from_mbps(
        20, 42, 100, [factory(), presets.reno()],
        duration=10.0, start_times=[0.0, 1.0],
    )
    assert_scenario_matches_reference(scenario)


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(sorted(PROTOCOL_FACTORIES)),
    n_flows=st.integers(min_value=1, max_value=4),
    bandwidth=st.sampled_from([10.0, 20.0, 60.0]),
    buffer_mss=st.sampled_from([10, 50, 100]),
    loss=st.sampled_from([0.0, 0.01, 0.05]),
    seed=st.integers(min_value=0, max_value=2**16),
    stagger=st.booleans(),
)
def test_random_scenarios_match_reference(
    name, n_flows, bandwidth, buffer_mss, loss, seed, stagger
):
    factory = PROTOCOL_FACTORIES[name]
    scenario = PacketScenario.from_mbps(
        bandwidth,
        42,
        buffer_mss,
        [factory() for _ in range(n_flows)],
        duration=6.0,
        random_loss_rate=loss,
        seed=seed,
        start_times=[0.5 * i for i in range(n_flows)] if stagger else None,
    )
    assert_scenario_matches_reference(scenario)


def test_window_decisions_carry_identical_floats():
    # The protocol consultation path (Observation fields, cwnd clamping)
    # runs through pooled round records; spot-check the decided windows.
    scenario = PacketScenario.from_mbps(
        20, 42, 50, [presets.cubic(), presets.reno()], duration=12.0
    )
    ref_flows, _, _ = reference_run_scenario(scenario)
    result = run_scenario(scenario, use_cache=False)
    for stats, ref in zip(result.flows, ref_flows, strict=True):
        ours = [w for _, w in stats.window_samples]
        theirs = [w for _, w in ref.window_samples]
        assert _bits(ours) == _bits(theirs)
        assert all(math.isfinite(w) for w in ours)
