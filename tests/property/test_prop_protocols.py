"""Property-based tests over the protocol families."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.sender import Observation
from repro.protocols.aimd import AIMD
from repro.protocols.binomial import BIN
from repro.protocols.cubic import CUBIC
from repro.protocols.mimd import MIMD
from repro.protocols.pcc import PccLike
from repro.protocols.robust_aimd import RobustAIMD

window_values = st.floats(min_value=0.0, max_value=1e6)
loss_values = st.floats(min_value=0.0, max_value=1.0)

aimds = st.builds(
    AIMD,
    a=st.floats(min_value=0.01, max_value=100.0),
    b=st.floats(min_value=0.01, max_value=0.99),
)
mimds = st.builds(
    MIMD,
    a=st.floats(min_value=1.001, max_value=2.0),
    b=st.floats(min_value=0.01, max_value=0.99),
)
bins = st.builds(
    BIN,
    a=st.floats(min_value=0.01, max_value=10.0),
    b=st.floats(min_value=0.01, max_value=1.0),
    k=st.floats(min_value=0.0, max_value=3.0),
    l=st.floats(min_value=0.0, max_value=1.0),
)
robusts = st.builds(
    RobustAIMD,
    a=st.floats(min_value=0.01, max_value=10.0),
    b=st.floats(min_value=0.01, max_value=0.99),
    epsilon=st.floats(min_value=1e-4, max_value=0.5),
)


def obs(window: float, loss: float) -> Observation:
    return Observation(step=0, window=window, loss_rate=loss, rtt=0.042,
                       min_rtt=0.042)


@given(protocol=st.one_of(aimds, mimds, bins, robusts), w=window_values,
       loss=loss_values)
def test_next_window_finite_and_nonnegative(protocol, w, loss):
    new = protocol.next_window(obs(w, loss))
    assert math.isfinite(new)
    assert new >= 0.0


@given(protocol=st.one_of(aimds, mimds), w=st.floats(min_value=0.1, max_value=1e6))
def test_growth_without_loss_decrease_with_loss(protocol, w):
    assert protocol.next_window(obs(w, 0.0)) > w
    assert protocol.next_window(obs(w, 0.5)) < w


@given(protocol=aimds, w1=window_values, w2=window_values, loss=loss_values)
def test_aimd_preserves_window_ordering(protocol, w1, w2, loss):
    # AIMD's update is monotone in the current window.
    low, high = sorted((w1, w2))
    assert protocol.next_window(obs(low, loss)) <= protocol.next_window(
        obs(high, loss)
    ) + 1e-9


@given(protocol=robusts, w=st.floats(min_value=0.1, max_value=1e6),
       loss=loss_values)
def test_robust_aimd_threshold_dichotomy(protocol, w, loss):
    new = protocol.next_window(obs(w, loss))
    if loss >= protocol.epsilon:
        assert new == w * protocol.b
    else:
        assert new == w + protocol.a


@given(protocol=mimds, w=st.floats(min_value=0.1, max_value=1e3),
       losses=st.lists(loss_values, min_size=1, max_size=30))
def test_mimd_ratio_preservation_along_any_feedback(protocol, w, losses):
    w1, w2 = w, 3.0 * w
    for loss in losses:
        w1 = protocol.next_window(obs(w1, loss))
        w2 = protocol.next_window(obs(w2, loss))
    assert w2 == pytest_approx(3.0 * w1)


def pytest_approx(value: float, rel: float = 1e-6):
    import pytest

    return pytest.approx(value, rel=rel)


@given(
    c=st.floats(min_value=0.01, max_value=2.0),
    b=st.floats(min_value=0.1, max_value=0.9),
    x_max=st.floats(min_value=1.0, max_value=1e4),
)
def test_cubic_backoff_exact(c, b, x_max):
    protocol = CUBIC(c, b)
    assert protocol.next_window(obs(x_max, 0.5)) == pytest_approx(x_max * b)


@given(
    w=st.floats(min_value=1.0, max_value=1e4),
    loss_sequence=st.lists(loss_values, min_size=2, max_size=40),
)
def test_pcc_windows_stay_positive(w, loss_sequence):
    protocol = PccLike()
    current = w
    for loss in loss_sequence:
        current = protocol.next_window(obs(current, loss))
        assert math.isfinite(current)
        assert current > 0.0


@given(protocol=st.one_of(aimds, mimds, bins, robusts),
       history=st.lists(st.tuples(window_values, loss_values), min_size=1,
                        max_size=20))
def test_determinism_across_clone(protocol, history):
    # A clone fed the same history produces the same decisions.
    clone = protocol.clone()
    for w, loss in history:
        assert protocol.next_window(obs(w, loss)) == clone.next_window(obs(w, loss))
