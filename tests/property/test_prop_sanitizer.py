"""Property: sanitizer checks never change results.

``repro.debug`` checks are observers — a run with ``REPRO_DEBUG_CHECKS=1``
must be *bit-identical* to a run without, for both the fluid model and
the packet simulator. Float arrays are compared as raw uint64 patterns so
even a last-ulp divergence fails loudly. This is the contract that lets
the test suite keep the sanitizer on everywhere without invalidating the
numbers it checks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import debug
from repro.model.dynamics import FluidSimulator, SimulationConfig
from repro.model.link import Link
from repro.packetsim.scenario import PacketScenario, run_scenario
from repro.protocols import presets

PROTOCOL_FACTORIES = {
    "aimd": presets.reno,
    "cubic": presets.cubic,
    "robust-aimd": presets.robust_aimd_paper,
}


def _bits(values) -> list[int]:
    array = np.asarray(values, dtype=np.float64)
    return array.reshape(-1).view(np.uint64).tolist()


def _assert_traces_identical(checked, unchecked) -> None:
    for name in ("windows", "observed_loss", "congestion_loss", "rtts",
                 "capacities", "pipe_limits", "base_rtts"):
        a, b = getattr(checked, name), getattr(unchecked, name)
        assert _bits(a) == _bits(b), name


def _assert_scenarios_identical(checked, unchecked) -> None:
    assert checked.events == unchecked.events
    assert checked.queue.enqueued == unchecked.queue.enqueued
    assert checked.queue.dropped == unchecked.queue.dropped
    assert checked.queue.departed == unchecked.queue.departed
    assert checked.queue.max_occupancy == unchecked.queue.max_occupancy
    for a, b in zip(checked.flows, unchecked.flows, strict=True):
        assert a.packets_sent == b.packets_sent
        assert a.packets_acked == b.packets_acked
        assert a.packets_lost == b.packets_lost
        assert a.rounds_completed == b.rounds_completed
        assert _bits(a.ack_times) == _bits(b.ack_times)
        assert _bits(a.loss_times) == _bits(b.loss_times)
        assert _bits(a.rtt_samples) == _bits(b.rtt_samples)
        assert _bits(a.window_samples) == _bits(b.window_samples)


@settings(max_examples=10, deadline=None)
@given(
    name=st.sampled_from(sorted(PROTOCOL_FACTORIES)),
    n=st.integers(min_value=1, max_value=4),
    steps=st.integers(min_value=5, max_value=60),
    vectorized=st.booleans(),
)
def test_fluid_run_bit_identical_under_checks(name, n, steps, vectorized):
    link = Link.from_mbps(20, 42, 100)
    factory = PROTOCOL_FACTORIES[name]

    def run():
        config = SimulationConfig(allow_vectorized=vectorized)
        sim = FluidSimulator(link, [factory() for _ in range(n)], config)
        return sim.run(steps)

    with debug.checks(True):
        checked = run()
    with debug.checks(False):
        unchecked = run()
    _assert_traces_identical(checked, unchecked)


@settings(max_examples=5, deadline=None)
@given(
    name=st.sampled_from(sorted(PROTOCOL_FACTORIES)),
    n=st.integers(min_value=1, max_value=3),
    loss=st.sampled_from([0.0, 0.01]),
)
def test_packet_run_bit_identical_under_checks(name, n, loss):
    factory = PROTOCOL_FACTORIES[name]

    def run():
        scenario = PacketScenario.from_mbps(
            10, 42, 50, [factory() for _ in range(n)],
            duration=3.0, random_loss_rate=loss,
        )
        return run_scenario(scenario, use_cache=False)

    with debug.checks(True):
        checked = run()
    with debug.checks(False):
        unchecked = run()
    _assert_scenarios_identical(checked, unchecked)


@pytest.mark.slow
def test_emulab_scale_scenario_bit_identical_under_checks():
    """The acceptance scenario: paper-scale Emulab run, checked vs not."""

    def run():
        scenario = PacketScenario.from_mbps(
            20, 42, 100,
            [presets.reno(), presets.cubic(), presets.robust_aimd_paper()],
            duration=10.0,
        )
        return run_scenario(scenario, use_cache=False)

    with debug.checks(True):
        checked = run()
    with debug.checks(False):
        unchecked = run()
    _assert_scenarios_identical(checked, unchecked)
