"""Property-based tests for statistics and Pareto machinery."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.dominance import dominates, pareto_front
from repro.analysis.stats import convergence_alpha, jain_index, min_over_max

# Zero is a legitimate throughput, but subnormal values are excluded:
# scaling a denormal (e.g. 5e-324 * 0.5) underflows to zero and genuinely
# changes the Jain index, which is float artifact, not unfairness.
positive_series = arrays(
    dtype=float,
    shape=st.integers(min_value=1, max_value=40),
    elements=st.one_of(
        st.just(0.0), st.floats(min_value=1e-6, max_value=1e6)
    ),
)


@given(values=positive_series)
def test_jain_index_bounds(values):
    n = values.size
    assert 1.0 / n - 1e-12 <= jain_index(values) <= 1.0 + 1e-12


@given(values=positive_series, scale=st.floats(min_value=1e-3, max_value=1e3))
def test_jain_scale_invariance(values, scale):
    assert jain_index(values * scale) == pytest.approx(jain_index(values), abs=1e-9)


@given(values=positive_series)
def test_min_over_max_bounds(values):
    assert 0.0 <= min_over_max(values) <= 1.0


@given(values=positive_series)
def test_convergence_alpha_bounds(values):
    alpha = convergence_alpha(values)
    assert 0.0 <= alpha <= 1.0


@given(values=positive_series)
def test_convergence_alpha_band_is_valid_witness(values):
    # The witness x* = (min+max)/2 satisfies the Metric V band inequality.
    alpha = convergence_alpha(values)
    x_star = (values.min() + values.max()) / 2.0
    if x_star > 0:
        assert values.min() >= alpha * x_star - 1e-9
        assert values.max() <= (2.0 - alpha) * x_star + 1e-9


points_strategy = st.lists(
    st.lists(st.floats(min_value=-100, max_value=100), min_size=3, max_size=3),
    min_size=1,
    max_size=25,
)


@given(points=points_strategy)
def test_front_members_are_mutually_non_dominated(points):
    front = pareto_front(points)
    for i in front:
        for j in front:
            if i != j:
                assert not dominates(points[i], points[j])


@given(points=points_strategy)
def test_non_members_are_dominated_by_someone(points):
    front = set(pareto_front(points))
    for index, point in enumerate(points):
        if index not in front:
            assert any(dominates(points[j], point) for j in range(len(points)))


@given(points=points_strategy)
def test_front_is_never_empty(points):
    assert pareto_front(points)


@given(
    p=st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=6),
)
def test_dominance_irreflexive(p):
    assert not dominates(p, p)


@given(
    pair=st.lists(
        st.lists(st.floats(min_value=-10, max_value=10), min_size=4, max_size=4),
        min_size=2, max_size=2,
    )
)
def test_dominance_asymmetric(pair):
    p, q = pair
    if dominates(p, q):
        assert not dominates(q, p)
