"""Property: the vectorized fast path is bit-identical to the general loop.

This is the contract that lets ``FluidSimulator`` freely dispatch between
the two implementations (and lets the trace cache ignore the
``allow_vectorized`` flag when keying): for every eligible configuration,
both paths must produce exactly the same float64 arrays, not merely close
ones.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.dynamics import FluidSimulator, SimulationConfig
from repro.model.link import Link
from repro.model.random_loss import BernoulliLoss
from repro.protocols.aimd import AIMD
from repro.protocols.mimd import MIMD
from repro.protocols.robust_aimd import RobustAIMD

_TRACE_ARRAYS = (
    "windows",
    "observed_loss",
    "congestion_loss",
    "rtts",
    "capacities",
    "pipe_limits",
    "base_rtts",
)


def _assert_traces_bit_identical(fast, slow):
    for name in _TRACE_ARRAYS:
        a = getattr(fast, name)
        b = getattr(slow, name)
        assert a.shape == b.shape, name
        # view(uint64) compares exact bit patterns; NaN == NaN included.
        assert np.array_equal(a.view(np.uint64), b.view(np.uint64)), name


def _run_both(link, protocol, n, initial, steps, loss_rate=0.0):
    loss = {"loss_process": BernoulliLoss(loss_rate)} if loss_rate else {}
    fast_sim = FluidSimulator(
        link, [protocol] * n, SimulationConfig(initial_windows=initial, **loss)
    )
    slow_sim = FluidSimulator(
        link, [protocol] * n,
        SimulationConfig(initial_windows=initial, allow_vectorized=False, **loss),
    )
    assert fast_sim._fast_path_eligible()
    assert not slow_sim._fast_path_eligible()
    return fast_sim.run(steps), slow_sim.run(steps)


@settings(max_examples=25, deadline=None)
@given(
    a=st.floats(min_value=0.1, max_value=5.0),
    b=st.floats(min_value=0.1, max_value=0.9),
    n=st.integers(min_value=1, max_value=5),
    bw=st.floats(min_value=5.0, max_value=200.0),
    buffer_mss=st.floats(min_value=1.0, max_value=500.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_aimd_fast_path_bit_identical(a, b, n, bw, buffer_mss, seed):
    link = Link.from_mbps(bw, 42, buffer_mss)
    rng = np.random.default_rng(seed)
    initial = [float(w) for w in rng.uniform(1.0, 50.0, size=n)]
    fast, slow = _run_both(link, AIMD(a, b), n, initial, steps=300)
    _assert_traces_bit_identical(fast, slow)


@settings(max_examples=25, deadline=None)
@given(
    a=st.floats(min_value=1.001, max_value=1.2),
    b=st.floats(min_value=0.5, max_value=0.99),
    n=st.integers(min_value=1, max_value=5),
    bw=st.floats(min_value=5.0, max_value=200.0),
)
def test_mimd_fast_path_bit_identical(a, b, n, bw):
    link = Link.from_mbps(bw, 42, 100)
    initial = [1.0 + 3.0 * i for i in range(n)]
    fast, slow = _run_both(link, MIMD(a, b), n, initial, steps=300)
    _assert_traces_bit_identical(fast, slow)


@settings(max_examples=15, deadline=None)
@given(
    epsilon=st.floats(min_value=0.001, max_value=0.2),
    loss_rate=st.floats(min_value=0.0, max_value=0.1),
    n=st.integers(min_value=1, max_value=4),
)
def test_robust_aimd_fast_path_bit_identical_under_random_loss(
    epsilon, loss_rate, n
):
    link = Link.from_mbps(20, 42, 100)
    initial = [1.0] * n
    fast, slow = _run_both(
        link, RobustAIMD(1.0, 0.8, epsilon), n, initial, steps=300,
        loss_rate=loss_rate,
    )
    _assert_traces_bit_identical(fast, slow)
