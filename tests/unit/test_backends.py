"""Unit coverage for the unified backend layer (repro.backends).

Spec validation, lowering errors, the backend registry, the spec-level
parallel jobs, and the unified trace adapters. The bit-identity of
lowering and caching is property-tested in
``tests/property/test_prop_backends.py``; these tests pin the contract
edges (what raises, what registers, what the adapters expose).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    Backend,
    LoweringError,
    ScenarioSpec,
    UnifiedTrace,
    backend_names,
    get_backend,
    register_backend,
    run_spec,
    run_specs,
)
from repro.model.dynamics import FluidSimulator
from repro.model.events import EventSchedule
from repro.model.link import Link
from repro.model.random_loss import GilbertElliottLoss
from repro.netmodel.topology import dumbbell
from repro.protocols.aimd import AIMD
from repro.protocols.slow_start import SlowStartWrapper


@pytest.fixture
def link() -> Link:
    return Link.from_mbps(20, 42, 100)


@pytest.fixture
def spec(link) -> ScenarioSpec:
    return ScenarioSpec(protocols=[AIMD(1, 0.5)] * 2, link=link, steps=64)


class TestSpecValidation:
    def test_requires_protocols(self, link):
        with pytest.raises(ValueError, match="at least one sender"):
            ScenarioSpec(protocols=[], link=link)

    def test_rejects_nonpositive_steps(self, link):
        with pytest.raises(ValueError, match="steps"):
            ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link, steps=0)

    def test_rejects_nonpositive_duration(self, link):
        with pytest.raises(ValueError, match="duration"):
            ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link, duration=0.0)

    def test_rejects_loss_rate_of_one(self, link):
        with pytest.raises(ValueError, match="random_loss_rate"):
            ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link,
                         random_loss_rate=1.0)

    def test_rejects_mismatched_initial_windows(self, link):
        with pytest.raises(ValueError, match="initial windows"):
            ScenarioSpec(protocols=[AIMD(1, 0.5)] * 2, link=link,
                         initial_windows=[1.0])

    def test_rejects_mismatched_start_times(self, link):
        with pytest.raises(ValueError, match="start times"):
            ScenarioSpec(protocols=[AIMD(1, 0.5)] * 2, link=link,
                         start_times=[0.0])

    def test_rejects_negative_start_times(self, link):
        with pytest.raises(ValueError, match="finite"):
            ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link,
                         start_times=[-1.0])

    def test_start_times_and_schedule_are_exclusive(self, link):
        with pytest.raises(ValueError, match="not both"):
            ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link,
                         start_times=[1.0], schedule=EventSchedule())

    def test_loss_rate_and_loss_process_are_exclusive(self, link):
        with pytest.raises(ValueError, match="not both"):
            ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link,
                         random_loss_rate=0.01,
                         loss_process=GilbertElliottLoss(0.1, 0.5, 0.1))

    def test_horizon_defaults_to_steps_worth_of_rtts(self, spec, link):
        assert spec.horizon_seconds() == pytest.approx(64 * link.base_rtt)
        timed = ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link, duration=7.5)
        assert timed.horizon_seconds() == 7.5

    def test_slow_start_wraps_every_sender(self, link):
        spec = ScenarioSpec(protocols=[AIMD(1, 0.5)] * 2, link=link,
                            slow_start=True)
        wrapped = spec.resolved_protocols()
        assert all(isinstance(p, SlowStartWrapper) for p in wrapped)
        assert len(wrapped) == 2


class TestLoweringErrors:
    def test_fluid_rejects_topology(self, link):
        spec = ScenarioSpec(protocols=[AIMD(1, 0.5)] * 3, link=link,
                            topology=dumbbell(link, link, 3))
        with pytest.raises(LoweringError, match="single-link"):
            spec.lower_fluid()

    def test_network_rejects_start_times(self, link):
        spec = ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link,
                            start_times=[1.0])
        with pytest.raises(LoweringError, match="staggered starts"):
            spec.lower_network()

    def test_network_rejects_integer_windows(self, link):
        spec = ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link,
                            integer_windows=True)
        with pytest.raises(LoweringError, match="integer-window"):
            spec.lower_network()

    def test_packet_rejects_loss_process(self, link):
        spec = ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link,
                            loss_process=GilbertElliottLoss(0.1, 0.5, 0.1))
        with pytest.raises(LoweringError, match="random_loss_rate"):
            spec.lower_packet()

    def test_packet_rejects_schedule(self, link):
        spec = ScenarioSpec(
            protocols=[AIMD(1, 0.5)], link=link,
            schedule=EventSchedule().add_sender_start(0, 10, window=1.0),
        )
        with pytest.raises(LoweringError, match="start_times"):
            spec.lower_packet()

    def test_packet_rejects_window_clamps(self, link):
        spec = ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link,
                            max_window=500.0)
        with pytest.raises(LoweringError, match="clamps"):
            spec.lower_packet()

    def test_packet_rejects_nonuniform_initial_windows(self, link):
        spec = ScenarioSpec(protocols=[AIMD(1, 0.5)] * 2, link=link,
                            initial_windows=[1.0, 4.0])
        with pytest.raises(LoweringError, match="uniform"):
            spec.lower_packet()

    def test_network_lowering_defaults_to_single_link_topology(self, spec):
        topology, protocols, kwargs, steps = spec.lower_network()
        assert topology.n_flows == 2
        assert len(protocols) == 2
        assert steps == 64
        assert kwargs["loss_process"] is None


class TestRegistry:
    def test_builtin_backends_are_registered(self):
        assert backend_names() == ["fluid", "meanfield", "network", "packet"]
        for name in backend_names():
            assert get_backend(name).name == name

    def test_unknown_backend_lists_alternatives(self):
        with pytest.raises(ValueError, match="fluid"):
            get_backend("quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(get_backend("fluid"))

    def test_replace_allows_reregistration(self):
        backend = get_backend("fluid")
        register_backend(backend, replace=True)
        assert get_backend("fluid") is backend

    def test_rejects_non_backend_objects(self):
        with pytest.raises(TypeError):
            register_backend(object())

    def test_rejects_unnamed_backends(self):
        class Anonymous(Backend):
            def run(self, spec):  # pragma: no cover - never called
                return None

            def cache_key(self, spec):  # pragma: no cover - never called
                return None

        with pytest.raises(ValueError, match="name"):
            register_backend(Anonymous())


class TestUnifiedTraces:
    def test_fluid_trace_carries_annotations(self, spec):
        trace = run_spec(spec, "fluid", use_cache=False)
        assert isinstance(trace, UnifiedTrace)
        assert trace.backend == "fluid"
        assert trace.flow_rtts.shape == trace.windows.shape
        tail = trace.tail(0.25)
        assert isinstance(tail, UnifiedTrace)
        assert tail.backend == "fluid"
        assert tail.flow_rtts.shape == tail.windows.shape

    def test_packet_trace_resamples_to_rtt_grid(self, link):
        spec = ScenarioSpec(protocols=[AIMD(1, 0.5)] * 2, link=link,
                            duration=5.0, seed=1)
        trace = run_spec(spec, "packet", use_cache=False)
        expected_steps = max(1, int(round(5.0 / link.base_rtt)))
        assert trace.steps == expected_steps
        assert trace.times.shape == (expected_steps,)
        assert np.all(np.diff(trace.times) > 0)
        assert np.all(trace.windows >= 0)
        assert np.all(trace.flow_rtts >= link.base_rtt)

    def test_metrics_accept_any_backend_trace(self, spec, link):
        from repro.core.metrics import (
            convergence_from_trace,
            divergence_from_trace,
            efficiency_from_trace,
            fairness_from_trace,
            fast_utilization_from_trace,
            friendliness_from_trace,
            latency_from_trace,
            loss_avoidance_from_trace,
        )

        packet_spec = ScenarioSpec(protocols=[AIMD(1, 0.5)] * 2, link=link,
                                   duration=6.0, seed=1)
        # Identical entries merge into one mean-field class; use two
        # distinct ones so per-sender estimators have two columns.
        meanfield_spec = ScenarioSpec(protocols=[AIMD(1, 0.5), AIMD(1, 0.8)],
                                      link=link, steps=64)
        per_backend = {"packet": packet_spec, "meanfield": meanfield_spec}
        for name in ("fluid", "meanfield", "network", "packet"):
            trace = run_spec(per_backend.get(name, spec), name,
                             use_cache=False)
            scores = {
                "efficiency": efficiency_from_trace(trace).score,
                "fast_utilization": fast_utilization_from_trace(trace).score,
                "loss_avoidance": loss_avoidance_from_trace(trace).score,
                "fairness": fairness_from_trace(trace).score,
                "convergence": convergence_from_trace(trace).score,
                "friendliness": friendliness_from_trace(
                    trace, p_senders=[0], q_senders=[1]
                ),
                "latency": latency_from_trace(trace).score,
            }
            assert all(np.isfinite(s) for s in scores.values()), (name, scores)
            assert isinstance(divergence_from_trace(trace), bool)


class TestRunSpecs:
    def test_serial_and_parallel_agree(self, link):
        specs = [
            ScenarioSpec(protocols=[AIMD(1, b)], link=link, steps=48)
            for b in (0.5, 0.8)
        ]
        serial = run_specs(specs, backend="fluid")
        parallel = run_specs(specs, backend="fluid", workers=2)
        assert len(serial) == len(parallel) == 2
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.windows, b.windows)
            assert a.backend == b.backend == "fluid"

    def test_matches_direct_engine_run(self, link):
        spec = ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link, steps=48)
        [trace] = run_specs([spec], backend="fluid")
        reference = FluidSimulator(link, [AIMD(1, 0.5)]).run(48)
        assert np.array_equal(trace.windows, reference.windows)
