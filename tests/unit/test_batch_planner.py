"""Batch planning and error isolation (repro.backends.batch)."""

import numpy as np
import pytest

from repro.backends import ScenarioSpec, run_spec, run_specs_batched
from repro.backends.batch import (
    _DEFAULT_CHUNK_ROWS,
    autotune_chunk_rows,
    plan_batches,
    plan_meanfield_batches,
    plan_network_batches,
    run_meanfield_specs_batched,
    run_network_specs_batched,
)
from repro.backends.spec import LoweringError
from repro.model.link import Link
from repro.perf import timing
from repro.protocols.aimd import AIMD
from repro.protocols.mimd import MIMD
from repro.protocols.presets import pcc_like


def _aimd_spec(a=1.0, b=0.5, bw=20.0, steps=100, n=2):
    return ScenarioSpec(
        protocols=[AIMD(a, b)] * n,
        link=Link.from_mbps(bw, 42, 100),
        steps=steps,
        initial_windows=[1.0] * n,
    )


def _multilink_spec():
    """A spec only the network backend can run: fluid lowering raises."""
    from repro.netmodel.topology import single_link

    return ScenarioSpec(
        protocols=[AIMD(1.0, 0.5)],
        link=Link.from_mbps(20, 42, 100),
        steps=50,
        topology=single_link(Link.from_mbps(20, 42, 100), 1),
    )


class TestPlanBatches:
    def test_singleton_spec_is_a_batch_of_one(self):
        plan = plan_batches([_aimd_spec()])
        assert plan.fallback == []
        assert len(plan.groups) == 1
        assert plan.groups[0].indices == [0]
        assert plan.groups[0].inputs.batch_size == 1

    def test_groups_by_flow_count_and_horizon(self):
        specs = [
            _aimd_spec(steps=100),
            _aimd_spec(steps=200),
            _aimd_spec(a=2.0, steps=100),  # params differ, steps+flows match
            _aimd_spec(steps=100, n=3),    # flow count differs
        ]
        plan = plan_batches(specs)
        assert plan.fallback == []
        groups = {tuple(g.indices) for g in plan.groups}
        assert groups == {(0, 2), (1,), (3,)}

    def test_mixed_protocol_classes_share_a_group(self):
        """Classes no longer split groups: dispatch is per cell."""
        specs = [
            _aimd_spec(steps=100),
            ScenarioSpec(
                protocols=[MIMD(1.01, 0.875)] * 2,
                link=Link.from_mbps(20, 42, 100),
                steps=100,
                initial_windows=[1.0, 1.0],
            ),
            ScenarioSpec(
                protocols=[AIMD(1.0, 0.5), MIMD(1.02, 0.9)],
                link=Link.from_mbps(40, 42, 100),
                steps=100,
                initial_windows=[1.0, 2.0],
            ),
        ]
        plan = plan_batches(specs)
        assert plan.fallback == []
        assert [g.indices for g in plan.groups] == [[0, 1, 2]]
        inputs = plan.groups[0].inputs
        assert len(inputs.class_table) == 2
        # Cell table: scenario 0 all-AIMD, 1 all-MIMD, 2 mixed per column.
        assert inputs.cell_classes.tolist() == [[0, 0], [1, 1], [0, 1]]
        # Merged param table is NaN where a cell's class lacks the name
        # (all classes here define a and b, so no NaN at all).
        assert np.isfinite(inputs.cell_params["a"]).all()

    def test_stateful_protocol_falls_back(self):
        specs = [
            _aimd_spec(),
            ScenarioSpec(
                protocols=[pcc_like(), AIMD(1.0, 0.5)],
                link=Link.from_mbps(20, 42, 100),
                steps=100,
                initial_windows=[1.0, 1.0],
            ),
        ]
        plan = plan_batches(specs)
        assert plan.fallback == [1]
        assert [g.indices for g in plan.groups] == [[0]]

    def test_stateful_grid_mix_groups_the_batchable_remainder(self):
        """CUBIC/Vegas/PccLike specs fall back; the rest still batch."""
        from repro.protocols.presets import cubic, vegas

        def stateful_spec(protocol):
            return ScenarioSpec(
                protocols=[protocol, AIMD(1.0, 0.5)],
                link=Link.from_mbps(20, 42, 100),
                steps=100,
                initial_windows=[1.0, 1.0],
            )

        specs = [
            _aimd_spec(a=1.0),                                  # 0 batch
            stateful_spec(cubic()),                             # 1
            ScenarioSpec(                                       # 2 batch
                protocols=[AIMD(1.0, 0.5), MIMD(1.02, 0.9)],
                link=Link.from_mbps(40, 42, 100),
                steps=100,
                initial_windows=[1.0, 2.0],
            ),
            stateful_spec(vegas()),                             # 3
            stateful_spec(pcc_like()),                          # 4
            _aimd_spec(a=2.0),                                  # 5 batch
        ]
        plan = plan_batches(specs)
        assert plan.fallback == [1, 3, 4]
        assert [g.indices for g in plan.groups] == [[0, 2, 5]]
        # Results come back in submission order, each equal to its serial
        # run — stateful fallbacks and batched rows interleaved.
        results = run_specs_batched(specs, use_cache=False)
        for spec, trace in zip(specs, results):
            reference = run_spec(spec, "fluid", use_cache=False)
            assert np.array_equal(
                np.ascontiguousarray(trace.windows).view(np.uint64),
                np.ascontiguousarray(reference.windows).view(np.uint64),
            )

    def test_unlowerable_spec_falls_back(self):
        plan = plan_batches([_aimd_spec(), _multilink_spec()])
        assert plan.fallback == [1]

    def test_indices_subset_restricts_planning(self):
        specs = [_aimd_spec(), _aimd_spec(a=2.0), _aimd_spec(a=3.0)]
        plan = plan_batches(specs, indices=[0, 2])
        assert plan.groups[0].indices == [0, 2]


class TestErrorIsolation:
    def test_fallback_error_raises_the_serial_exception(self):
        with pytest.raises(LoweringError):
            run_specs_batched([_aimd_spec(), _multilink_spec()], use_cache=False)

    def test_skip_errors_yields_none_without_poisoning_the_batch(self):
        good = [_aimd_spec(a=1.0), _aimd_spec(a=2.0)]
        results = run_specs_batched(
            [good[0], _multilink_spec(), good[1]], use_cache=False,
            skip_errors=True,
        )
        assert results[1] is None
        for spec, trace in ((good[0], results[0]), (good[1], results[2])):
            reference = run_spec(spec, "fluid", use_cache=False)
            assert np.array_equal(trace.windows, reference.windows)

    @pytest.mark.filterwarnings("ignore:overflow encountered")
    def test_nonfinite_row_is_isolated_and_raises_serially(self):
        """A diverging scenario reruns serially; batchmates are unharmed."""
        # An unbounded-buffer link never signals loss, so the huge additive
        # increase overflows float64 on the second step — exactly the
        # "protocol produced a non-finite window" error the serial engine
        # raises.
        diverging = ScenarioSpec(
            protocols=[AIMD(1e308, 0.5)],
            link=Link.from_mbps(20, 42, float("inf")),
            steps=30,
            initial_windows=[1e308],
            max_window=float("inf"),
        )
        healthy = ScenarioSpec(
            protocols=[AIMD(1.0, 0.5)],
            link=Link.from_mbps(30, 42, 100),
            steps=30,
            initial_windows=[1.0],
            max_window=float("inf"),
        )
        plan = plan_batches([diverging, healthy])
        assert plan.fallback == []  # same group: isolation happens in-kernel
        with pytest.raises(ValueError, match="non-finite"):
            run_specs_batched([diverging, healthy], use_cache=False)
        results = run_specs_batched(
            [diverging, healthy], use_cache=False, skip_errors=True
        )
        assert results[0] is None
        reference = run_spec(healthy, "fluid", use_cache=False)
        assert np.array_equal(results[1].windows, reference.windows)

    @pytest.mark.filterwarnings("ignore:overflow encountered")
    def test_nonfinite_row_is_isolated_in_a_heterogeneous_group(self):
        """Divergence detection survives the per-cell class dispatch.

        A mixed-class group (the scenario itself mixes AIMD and MIMD
        columns, its batchmate is all-MIMD) with one diverging row must
        raise the exact serial error, and — with ``skip_errors`` — leave
        the healthy row bit-identical to its serial trace.
        """
        diverging = ScenarioSpec(
            protocols=[AIMD(1e308, 0.5), MIMD(1.01, 0.9)],
            link=Link.from_mbps(20, 42, float("inf")),
            steps=30,
            initial_windows=[1e308, 1.0],
            max_window=float("inf"),
        )
        healthy = ScenarioSpec(
            protocols=[MIMD(1.02, 0.9)] * 2,
            link=Link.from_mbps(30, 42, 100),
            steps=30,
            initial_windows=[1.0, 2.0],
            max_window=float("inf"),
        )
        plan = plan_batches([diverging, healthy])
        assert plan.fallback == []
        assert [g.indices for g in plan.groups] == [[0, 1]]
        assert len(plan.groups[0].inputs.class_table) == 2
        with pytest.raises(ValueError, match="non-finite"):
            run_specs_batched([diverging, healthy], use_cache=False)
        results = run_specs_batched(
            [diverging, healthy], use_cache=False, skip_errors=True
        )
        assert results[0] is None
        reference = run_spec(healthy, "fluid", use_cache=False)
        assert np.array_equal(
            np.ascontiguousarray(results[1].windows).view(np.uint64),
            np.ascontiguousarray(reference.windows).view(np.uint64),
        )


def _dumbbell_spec(a=1.0, bw=20.0, steps=60, n=3, protocols=None):
    from repro.netmodel.topology import dumbbell

    bottleneck = Link.from_mbps(bw, 42, 100)
    return ScenarioSpec(
        protocols=protocols or [AIMD(a, 0.5)] * n,
        link=bottleneck,
        steps=steps,
        topology=dumbbell(Link.from_mbps(200, 10, 200), bottleneck, n),
        initial_windows=[1.0] * (len(protocols) if protocols else n),
    )


def _bit_equal(a, b):
    return np.array_equal(
        np.ascontiguousarray(a).view(np.uint64),
        np.ascontiguousarray(b).view(np.uint64),
    )


class TestPlanNetworkBatches:
    def test_mixed_class_grids_share_a_group(self):
        """Protocol classes never split network groups: per-cell dispatch."""
        specs = [
            _dumbbell_spec(a=1.0),
            _dumbbell_spec(protocols=[MIMD(1.01, 0.9)] * 3),
            _dumbbell_spec(protocols=[AIMD(1.0, 0.5), MIMD(1.02, 0.9),
                                      AIMD(2.0, 0.7)]),
        ]
        plan = plan_network_batches(specs)
        assert plan.fallback == []
        assert [g.indices for g in plan.groups] == [[0, 1, 2]]
        inputs = plan.groups[0].inputs
        assert len(inputs.class_table) == 2
        assert inputs.cell_classes.tolist() == [[0, 0, 0], [1, 1, 1], [0, 1, 0]]

    def test_topology_structure_splits_groups(self):
        """Same flow count, different path structure — separate kernels."""
        from repro.netmodel.topology import parking_lot

        link = Link.from_mbps(30, 42, 100)
        lot = ScenarioSpec(
            protocols=[AIMD(1.0, 0.5)] * 4,
            link=link,
            steps=60,
            topology=parking_lot(link, 3),
            initial_windows=[1.0] * 4,
        )
        specs = [_dumbbell_spec(n=4), lot, _dumbbell_spec(a=2.0, n=4)]
        plan = plan_network_batches(specs)
        assert plan.fallback == []
        assert {tuple(g.indices) for g in plan.groups} == {(0, 2), (1,)}

    def test_missing_loss_process_batches_as_no_loss(self):
        """lower_network leaves loss_process=None; the planner must accept
        it (the serial engine substitutes NoLoss)."""
        spec = _dumbbell_spec()
        assert spec.lower_network()[2]["loss_process"] is None
        plan = plan_network_batches([spec])
        assert plan.fallback == []
        assert float(plan.groups[0].inputs.random_rate[0]) == 0.0

    def test_stateful_protocol_falls_back_and_stays_serial_identical(self):
        specs = [
            _dumbbell_spec(),
            _dumbbell_spec(protocols=[pcc_like(), AIMD(1.0, 0.5),
                                      AIMD(1.0, 0.5)]),
        ]
        plan = plan_network_batches(specs)
        assert plan.fallback == [1]
        results = run_network_specs_batched(specs, use_cache=False)
        for spec, trace in zip(specs, results):
            reference = run_spec(spec, "network", use_cache=False)
            assert _bit_equal(trace.windows, reference.windows)


def _sweep_spec(a=1.0, bw=20.0, steps=80, population=10):
    return ScenarioSpec.from_mbps(
        bw, 42, 100, [AIMD(a, 0.5)],
        steps=steps, flow_multiplicity=population,
    )


class TestPlanMeanFieldBatches:
    def test_single_population_sweeps_share_a_group(self):
        specs = [_sweep_spec(a=a, bw=bw) for a, bw in
                 ((1.0, 10.0), (2.0, 40.0), (0.5, 120.0))]
        plan = plan_meanfield_batches(specs)
        assert plan.fallback == []
        assert [g.indices for g in plan.groups] == [[0, 1, 2]]

    def test_multi_population_spec_is_isolated_per_spec(self):
        """Two densities per scenario exceed the stacked kernel's shape;
        the spec falls back to the serial engine, bit-identically."""
        multi = ScenarioSpec.from_mbps(
            20, 42, 100, [AIMD(1.0, 0.5), MIMD(1.01, 0.9)],
            steps=80, flow_multiplicity=5,
        )
        assert len(multi.lower_meanfield().groups) == 2
        specs = [_sweep_spec(), multi, _sweep_spec(a=2.0)]
        plan = plan_meanfield_batches(specs)
        assert plan.fallback == [1]
        assert [g.indices for g in plan.groups] == [[0, 2]]
        results = run_meanfield_specs_batched(specs, use_cache=False)
        for spec, trace in zip(specs, results):
            reference = run_spec(spec, "meanfield", use_cache=False)
            assert _bit_equal(trace.windows, reference.windows)

    def test_incompatible_grids_are_isolated_per_spec(self):
        """Different cell counts cannot stack; each grid gets its own
        kernel pass and still matches its serial run bit for bit."""
        from repro.meanfield.grid import WindowGrid

        coarse = _sweep_spec()
        scenario = coarse.lower_meanfield()
        scenario.grid = WindowGrid(lo=1.0, hi=200.0, cells=512)
        coarse.lower_meanfield = lambda: scenario
        specs = [coarse, _sweep_spec(a=2.0)]
        plan = plan_meanfield_batches(specs)
        assert plan.fallback == []
        assert {tuple(g.indices) for g in plan.groups} == {(0,), (1,)}
        results = run_meanfield_specs_batched(specs, use_cache=False)
        for spec, trace in zip(specs, results):
            reference = run_spec(spec, "meanfield", use_cache=False)
            assert _bit_equal(trace.windows, reference.windows)

    def test_horizon_splits_groups(self):
        specs = [_sweep_spec(steps=50), _sweep_spec(steps=100),
                 _sweep_spec(a=2.0, steps=50)]
        plan = plan_meanfield_batches(specs)
        assert {tuple(g.indices) for g in plan.groups} == {(0, 2), (1,)}


class TestChunkAutotune:
    def test_default_before_any_measurement(self, monkeypatch):
        monkeypatch.setattr(timing, "REGISTRY", timing.TimingRegistry())
        import repro.model.batch as model_batch

        monkeypatch.setattr(model_batch, "_KERNEL_CELLS", 0)
        assert autotune_chunk_rows(100) == _DEFAULT_CHUNK_ROWS

    def test_tunes_rows_from_measured_throughput(self, monkeypatch):
        registry = timing.TimingRegistry()
        registry.add("batch.kernel", 1.0)  # 1 s over 1e6 cells = 1 µs/cell
        monkeypatch.setattr(timing, "REGISTRY", registry)
        import repro.model.batch as model_batch

        monkeypatch.setattr(model_batch, "_KERNEL_CELLS", 1_000_000)
        # 0.25 s target / (1 µs * 1000 steps) = 250 rows.
        assert autotune_chunk_rows(1000) == 250
        assert autotune_chunk_rows(10) == 4096  # clamped above
        assert autotune_chunk_rows(10**9) == 1  # clamped below

    def test_batched_run_feeds_the_autotuner(self, monkeypatch):
        # timing.measure is bound to the process-wide registry, so compare
        # its before/after totals instead of swapping the registry out.
        import repro.model.batch as model_batch

        monkeypatch.setattr(model_batch, "_KERNEL_CELLS", 0)
        spent_before = timing.REGISTRY.total("batch.kernel")
        run_specs_batched([_aimd_spec(), _aimd_spec(a=2.0)], use_cache=False)
        assert model_batch.kernel_cells() == 2 * 100
        assert timing.REGISTRY.total("batch.kernel") > spent_before
