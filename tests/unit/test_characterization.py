"""Protocol characterization and hierarchy helpers (repro.core.characterization)."""

import pytest

from repro.core.characterization import (
    CharacterizationResult,
    characterize,
    hierarchy,
    theoretical_row_for,
)
from repro.core.metrics import EstimatorConfig, MetricVector
from repro.protocols.aimd import AIMD
from repro.protocols.binomial import BIN
from repro.protocols.cubic import CUBIC
from repro.protocols.mimd import MIMD
from repro.protocols.pcc import PccLike
from repro.protocols.robust_aimd import RobustAIMD


class TestTheoreticalRowFor:
    def test_known_families_resolve(self, emulab_link):
        for protocol in (AIMD(1, 0.5), MIMD(1.01, 0.875), BIN(1, 1, 1, 0),
                         CUBIC(0.4, 0.8), RobustAIMD(1, 0.8, 0.01)):
            row = theoretical_row_for(protocol, emulab_link, 2)
            assert row is not None
            assert protocol.name == row.protocol

    def test_robust_aimd_not_shadowed_by_aimd(self, emulab_link):
        # RobustAIMD must resolve to its own row even though it could be
        # confused with the AIMD family.
        row = theoretical_row_for(RobustAIMD(1, 0.8, 0.01), emulab_link, 2)
        assert row.worst_case.robustness == pytest.approx(0.01)

    def test_unknown_family_returns_none(self, emulab_link):
        assert theoretical_row_for(PccLike(), emulab_link, 2) is None


class TestCharacterize:
    def test_full_characterization(self, emulab_link, fast_config):
        result = characterize(AIMD(1, 0.5), emulab_link, fast_config)
        assert result.protocol == "AIMD(1,0.5)"
        assert result.theoretical is not None
        assert result.empirical.efficiency > 0.9

    def test_without_robustness_is_nan(self, emulab_link, fast_config):
        import math

        result = characterize(
            AIMD(1, 0.5), emulab_link, fast_config, include_robustness=False
        )
        assert math.isnan(result.empirical.robustness)

    def test_discrepancy(self, emulab_link, fast_config):
        result = characterize(AIMD(1, 0.5), emulab_link, fast_config)
        gap = result.discrepancy("loss_avoidance")
        assert gap is not None
        assert abs(gap) < 0.02

    def test_discrepancy_none_without_theory(self, emulab_link, fast_config):
        result = characterize(
            PccLike(), emulab_link, fast_config, include_robustness=False
        )
        assert result.discrepancy("efficiency") is None


class TestHierarchy:
    def make_results(self):
        return [
            CharacterizationResult(
                protocol="good",
                empirical=MetricVector(efficiency=0.9, loss_avoidance=0.01),
                theoretical=None,
            ),
            CharacterizationResult(
                protocol="bad",
                empirical=MetricVector(efficiency=0.4, loss_avoidance=0.2),
                theoretical=None,
            ),
        ]

    def test_larger_better_ordering(self):
        assert hierarchy(self.make_results(), "efficiency") == ["good", "bad"]

    def test_lower_better_ordering(self):
        # loss-avoidance ranks ascending: less loss is better.
        assert hierarchy(self.make_results(), "loss_avoidance") == ["good", "bad"]

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            hierarchy(self.make_results(), "speed")

    def test_theory_ranking_requires_rows(self):
        with pytest.raises(ValueError):
            hierarchy(self.make_results(), "efficiency", use_theory=True)
