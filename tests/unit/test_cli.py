"""The command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.bw == 20.0
        assert args.rtt == 42.0
        assert args.buffer == 100.0
        assert args.steps == 4000

    def test_table2_flags(self):
        args = build_parser().parse_args(["table2", "--packet", "--pcc-bound"])
        assert args.packet and args.pcc_bound

    def test_simulate_requires_protocols(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_workers_and_timing_flags(self):
        args = build_parser().parse_args(["--workers", "4", "--timing", "claims"])
        assert args.workers == 4
        assert args.timing

    def test_workers_defaults_to_serial(self):
        args = build_parser().parse_args(["claims"])
        assert args.workers is None
        assert not args.timing

    def test_cache_subcommand(self):
        args = build_parser().parse_args(["cache", "stats"])
        assert args.action == "stats"
        args = build_parser().parse_args(["cache", "clear", "--dir", "/tmp/x"])
        assert args.action == "clear"
        assert args.dir == "/tmp/x"

    def test_cache_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "frobnicate"])

    def test_cache_prune_flags(self):
        args = build_parser().parse_args(["cache", "prune", "--max-mb", "64"])
        assert args.action == "prune"
        assert args.max_mb == 64.0
        args = build_parser().parse_args(["cache", "prune"])
        assert args.max_mb is None
        assert not args.dry_run
        args = build_parser().parse_args(["cache", "prune", "--dry-run"])
        assert args.dry_run

    def test_batch_flags(self):
        assert build_parser().parse_args(["table2", "--batch"]).batch
        assert build_parser().parse_args(["figure1", "--batch"]).batch
        args = build_parser().parse_args(
            ["run", "--protocols", "reno", "--batch"]
        )
        assert args.batch
        assert not build_parser().parse_args(["figure1"]).batch
        assert build_parser().parse_args(["fct", "--batch"]).batch
        assert build_parser().parse_args(["emulab", "--batch"]).batch
        assert not build_parser().parse_args(["fct"]).batch


class TestMain:
    def test_simulate_prints_summary(self, capsys):
        exit_code = main(
            ["simulate", "--protocols", "AIMD(1,0.5)", "reno", "--steps", "300"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "mean_utilization" in captured.out
        assert "AIMD(1,0.5)" in captured.out

    def test_figure1_runs_and_writes_json(self, capsys, tmp_path):
        out = tmp_path / "figure1.json"
        exit_code = main(["--json", str(out), "figure1"])
        assert exit_code == 0
        payload = json.loads(out.read_text())
        assert payload["mutually_non_dominated"] is True
        assert "Figure 1" in capsys.readouterr().out

    def test_table1_fast_run(self, capsys):
        exit_code = main(["table1", "--steps", "800"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Robust-AIMD" in out

    def test_table2_fast_run_markdown(self, capsys):
        exit_code = main(["--markdown", "table2", "--steps", "800"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "improvement" in out
        assert "|" in out  # markdown table

    def test_claims_fast_run(self, capsys):
        exit_code = main(["claims", "--steps", "1200"])
        assert exit_code == 0
        assert "Claim 1" in capsys.readouterr().out

    def test_bad_protocol_spec_raises(self):
        with pytest.raises(ValueError):
            main(["simulate", "--protocols", "NOPE(1)"])

    def test_claims_with_workers_and_timing(self, capsys):
        exit_code = main(["--workers", "2", "--timing", "claims",
                          "--steps", "800"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Claim 1" in captured.out
        assert "sweep.run" in captured.err  # the timing table

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries: 0" in out
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_cache_stats_reports_per_backend_kinds(self, capsys, tmp_path,
                                                   monkeypatch):
        from repro.perf import cache as cache_mod

        monkeypatch.setenv(cache_mod.CACHE_ENV, str(tmp_path))
        monkeypatch.setattr(cache_mod, "_active", None)
        for backend in ("fluid", "packet"):
            assert main(["run", "--backend", backend, "--protocols", "reno",
                         "--steps", "60"]) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "unified:fluid: 1 entries" in out
        assert "unified:packet: 1 entries" in out
        # The engines' native caches warm alongside the unified store.
        assert "\n  fluid: 1 entries" in out
        assert "\n  packet: 1 entries" in out

        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "removed 4" in out
        assert "unified:fluid" in out

    def test_cache_prune_reports_reclaimed_bytes(self, capsys, tmp_path,
                                                 monkeypatch):
        from repro.perf import cache as cache_mod

        monkeypatch.setenv(cache_mod.CACHE_ENV, str(tmp_path))
        monkeypatch.setattr(cache_mod, "_active", None)
        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        assert main(["run", "--protocols", "reno", "--steps", "60"]) == 0
        capsys.readouterr()

        # --max-mb 0 evicts everything and reports the reclaimed bytes.
        assert main(["cache", "prune", "--dir", str(tmp_path),
                     "--max-mb", "0"]) == 0
        out = capsys.readouterr().out
        assert "reclaimed" in out
        assert "remaining: 0 entries" in out

        # Without a cap (flag or env) pruning is a no-op.
        assert main(["cache", "prune", "--dir", str(tmp_path)]) == 0
        assert "pruned 0" in capsys.readouterr().out

    def test_cache_prune_dry_run_leaves_entries_in_place(self, capsys,
                                                         tmp_path,
                                                         monkeypatch):
        from repro.perf import cache as cache_mod

        monkeypatch.setenv(cache_mod.CACHE_ENV, str(tmp_path))
        monkeypatch.setattr(cache_mod, "_active", None)
        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        assert main(["run", "--protocols", "reno", "--steps", "60"]) == 0
        capsys.readouterr()

        assert main(["cache", "prune", "--dir", str(tmp_path),
                     "--max-mb", "0", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would prune" in out
        assert "would reclaim" in out

        # The rehearsal deleted nothing: stats still see the entries.
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        assert "0 entries" not in capsys.readouterr().out

    def test_run_batch_matches_serial(self, capsys):
        argv = ["run", "--protocols", "AIMD(1,0.5)", "reno",
                "--steps", "80", "--no-cache"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--batch"]) == 0
        batched_out = capsys.readouterr().out
        assert batched_out == serial_out


class TestRunCommand:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--protocols", "reno"])
        assert args.backend == "fluid"
        assert args.steps == 2000
        assert args.duration is None
        assert not args.no_cache

    def test_run_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--backend", "quantum", "--protocols", "reno"]
            )

    @pytest.mark.parametrize(
        "backend", ["fluid", "meanfield", "network", "packet"]
    )
    def test_run_prints_summary_on_every_backend(self, capsys, backend):
        exit_code = main([
            "run", "--backend", backend, "--protocols", "AIMD(1,0.5)", "reno",
            "--steps", "80", "--no-cache",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert f"backend={backend}" in captured.out
        assert "mean_utilization" in captured.out
        assert "tail mean window" in captured.out
        assert "cache key" in captured.out

    def test_docstring_backend_line_tracks_registry(self):
        from repro import cli
        from repro.backends import backend_names

        expected = "--backend {" + ",".join(backend_names()) + "}"
        assert expected in cli.__doc__
        assert "{backends}" not in cli.__doc__  # placeholder fully resolved

    def test_run_meanfield_with_flow_multiplicity(self, capsys):
        exit_code = main([
            "run", "--backend", "meanfield", "--protocols", "AIMD(1,0.5)",
            "--flows", "100000", "--unsync-loss", "--steps", "60",
            "--no-cache",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "backend=meanfield" in captured.out
        assert "x100000" in captured.out
        assert "MSS/flow" in captured.out

    def test_run_flows_expand_on_flow_level_backends(self, capsys):
        exit_code = main([
            "run", "--backend", "fluid", "--protocols", "AIMD(1,0.5)",
            "--flows", "3", "--steps", "60", "--no-cache",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "x3" in captured.out
