"""The command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.bw == 20.0
        assert args.rtt == 42.0
        assert args.buffer == 100.0
        assert args.steps == 4000

    def test_table2_flags(self):
        args = build_parser().parse_args(["table2", "--packet", "--pcc-bound"])
        assert args.packet and args.pcc_bound

    def test_simulate_requires_protocols(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_workers_and_timing_flags(self):
        args = build_parser().parse_args(["--workers", "4", "--timing", "claims"])
        assert args.workers == 4
        assert args.timing

    def test_workers_defaults_to_serial(self):
        args = build_parser().parse_args(["claims"])
        assert args.workers is None
        assert not args.timing

    def test_cache_subcommand(self):
        args = build_parser().parse_args(["cache", "stats"])
        assert args.action == "stats"
        args = build_parser().parse_args(["cache", "clear", "--dir", "/tmp/x"])
        assert args.action == "clear"
        assert args.dir == "/tmp/x"

    def test_cache_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "frobnicate"])


class TestMain:
    def test_simulate_prints_summary(self, capsys):
        exit_code = main(
            ["simulate", "--protocols", "AIMD(1,0.5)", "reno", "--steps", "300"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "mean_utilization" in captured.out
        assert "AIMD(1,0.5)" in captured.out

    def test_figure1_runs_and_writes_json(self, capsys, tmp_path):
        out = tmp_path / "figure1.json"
        exit_code = main(["--json", str(out), "figure1"])
        assert exit_code == 0
        payload = json.loads(out.read_text())
        assert payload["mutually_non_dominated"] is True
        assert "Figure 1" in capsys.readouterr().out

    def test_table1_fast_run(self, capsys):
        exit_code = main(["table1", "--steps", "800"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Robust-AIMD" in out

    def test_table2_fast_run_markdown(self, capsys):
        exit_code = main(["--markdown", "table2", "--steps", "800"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "improvement" in out
        assert "|" in out  # markdown table

    def test_claims_fast_run(self, capsys):
        exit_code = main(["claims", "--steps", "1200"])
        assert exit_code == 0
        assert "Claim 1" in capsys.readouterr().out

    def test_bad_protocol_spec_raises(self):
        with pytest.raises(ValueError):
            main(["simulate", "--protocols", "NOPE(1)"])

    def test_claims_with_workers_and_timing(self, capsys):
        exit_code = main(["--workers", "2", "--timing", "claims",
                          "--steps", "800"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Claim 1" in captured.out
        assert "sweep.run" in captured.err  # the timing table

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries: 0" in out
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "removed 0" in capsys.readouterr().out
