"""Pareto dominance machinery (repro.analysis.dominance)."""

import pytest

from repro.analysis.dominance import dominates, is_on_front, pareto_front


class TestDominates:
    def test_strict_dominance(self):
        assert dominates([2, 2], [1, 1])

    def test_partial_improvement_dominates(self):
        assert dominates([2, 1], [1, 1])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([1, 1], [1, 1])

    def test_tradeoff_points_incomparable(self):
        assert not dominates([2, 0], [0, 2])
        assert not dominates([0, 2], [2, 0])

    def test_antisymmetric(self):
        assert dominates([3, 3], [1, 2])
        assert not dominates([1, 2], [3, 3])

    def test_tolerance_absorbs_noise(self):
        # A 1e-6 deficit in one coordinate is ignored at tol=1e-3.
        assert dominates([1.0, 2.0 - 1e-6], [0.5, 2.0], tol=1e-3)

    def test_tolerance_requires_meaningful_gain(self):
        assert not dominates([1.0005, 1.0], [1.0, 1.0], tol=1e-3)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            dominates([1, 2], [1, 2, 3])

    def test_negative_tolerance(self):
        with pytest.raises(ValueError):
            dominates([1], [0], tol=-1)


class TestParetoFront:
    def test_single_point(self):
        assert pareto_front([[1, 1]]) == [0]

    def test_chain_keeps_maximum(self):
        points = [[1, 1], [2, 2], [3, 3]]
        assert pareto_front(points) == [2]

    def test_tradeoff_keeps_all(self):
        points = [[3, 0], [2, 1], [1, 2], [0, 3]]
        assert pareto_front(points) == [0, 1, 2, 3]

    def test_mixed(self):
        points = [[3, 0], [1, 1], [2, 2], [0, 3]]
        assert pareto_front(points) == [0, 2, 3]

    def test_duplicates_all_kept(self):
        points = [[1, 1], [1, 1]]
        assert pareto_front(points) == [0, 1]

    def test_input_must_be_2d(self):
        with pytest.raises(ValueError):
            pareto_front([1, 2, 3])


class TestIsOnFront:
    def test_undominated(self):
        assert is_on_front([2, 2], [[1, 1], [3, 0]])

    def test_dominated(self):
        assert not is_on_front([1, 1], [[2, 2]])

    def test_empty_others(self):
        assert is_on_front([0, 0], [])
