"""The fluid simulation engine (repro.model.dynamics)."""

import numpy as np
import pytest

from repro.model.dynamics import FluidSimulator, SimulationConfig, run_homogeneous
from repro.model.events import EventSchedule
from repro.model.link import Link
from repro.model.random_loss import BernoulliLoss
from repro.model.sender import Observation
from repro.protocols.aimd import AIMD
from repro.protocols.base import Protocol
from repro.protocols.vegas import VegasLike


class TestBasics:
    def test_single_aimd_sawtooth(self, emulab_link):
        trace = run_homogeneous(emulab_link, AIMD(1, 0.5), 1, 500)
        w = trace.sender_series(0)
        # Additive climb from the initial window.
        assert w[1] == pytest.approx(w[0] + 1)
        # The window eventually oscillates near the pipe limit.
        assert w[-100:].max() > 0.9 * emulab_link.pipe_limit

    def test_trace_shape(self, emulab_link):
        sim = FluidSimulator(emulab_link, [AIMD(1, 0.5)] * 3)
        trace = sim.run(100)
        assert trace.steps == 100
        assert trace.n_senders == 3

    def test_determinism(self, emulab_link):
        t1 = run_homogeneous(emulab_link, AIMD(1, 0.5), 2, 400)
        t2 = run_homogeneous(emulab_link, AIMD(1, 0.5), 2, 400)
        np.testing.assert_array_equal(t1.windows, t2.windows)

    def test_rerun_resets_state(self, emulab_link):
        # Running the same simulator twice gives identical traces (protocol
        # state and loss processes are reset).
        sim = FluidSimulator(emulab_link, [AIMD(1, 0.5)] * 2)
        t1 = sim.run(300)
        t2 = sim.run(300)
        np.testing.assert_array_equal(t1.windows, t2.windows)

    def test_same_protocol_object_for_all_senders_is_safe(self, emulab_link):
        # Protocols are deep-copied: shared state cannot leak across senders.
        from repro.protocols.cubic import CUBIC

        protocol = CUBIC(0.4, 0.8)
        sim = FluidSimulator(emulab_link, [protocol, protocol])
        trace = sim.run(300)
        assert trace.n_senders == 2

    def test_zero_steps_rejected(self, emulab_link):
        sim = FluidSimulator(emulab_link, [AIMD(1, 0.5)])
        with pytest.raises(ValueError):
            sim.run(0)

    def test_no_senders_rejected(self, emulab_link):
        with pytest.raises(ValueError):
            FluidSimulator(emulab_link, [])


class TestConfig:
    def test_initial_windows_respected(self, emulab_link):
        config = SimulationConfig(initial_windows=[50.0, 1.0])
        sim = FluidSimulator(emulab_link, [AIMD(1, 0.5)] * 2, config)
        trace = sim.run(10)
        assert trace.windows[0, 0] == pytest.approx(50.0)
        assert trace.windows[0, 1] == pytest.approx(1.0)

    def test_initial_window_count_must_match(self, emulab_link):
        config = SimulationConfig(initial_windows=[1.0])
        with pytest.raises(ValueError, match="initial windows"):
            FluidSimulator(emulab_link, [AIMD(1, 0.5)] * 2, config)

    def test_negative_initial_window_rejected(self, emulab_link):
        config = SimulationConfig(initial_windows=[-1.0])
        with pytest.raises(ValueError):
            FluidSimulator(emulab_link, [AIMD(1, 0.5)], config)

    def test_min_window_floor(self, emulab_link):
        # Repeated halving cannot push the window below the floor.
        config = SimulationConfig(initial_windows=[200.0], min_window=1.0)
        from repro.model.random_loss import BernoulliLoss

        config.loss_process = BernoulliLoss(0.5)
        sim = FluidSimulator(emulab_link, [AIMD(1, 0.5)], config)
        trace = sim.run(100)
        assert np.nanmin(trace.windows) >= 1.0

    def test_max_window_cap(self):
        link = Link.infinite()
        config = SimulationConfig(initial_windows=[1.0], max_window=10.0)
        sim = FluidSimulator(link, [AIMD(1, 0.5)], config)
        trace = sim.run(100)
        assert np.nanmax(trace.windows) <= 10.0

    def test_integer_windows(self, emulab_link):
        config = SimulationConfig(initial_windows=[1.0], integer_windows=True)
        sim = FluidSimulator(emulab_link, [AIMD(1, 0.5)], config)
        trace = sim.run(200)
        w = trace.sender_series(0)
        np.testing.assert_array_equal(w, np.round(w))

    def test_invalid_window_bounds(self):
        with pytest.raises(ValueError):
            SimulationConfig(min_window=10.0, max_window=1.0)
        with pytest.raises(ValueError):
            SimulationConfig(min_window=-1.0)


class TestLossBasedEnforcement:
    class RttSniffer(Protocol):
        """Claims to be loss-based but records the RTT it is shown."""

        loss_based = True

        def __init__(self):
            self.seen_rtts = []

        def next_window(self, obs: Observation) -> float:
            self.seen_rtts.append(obs.rtt)
            return obs.window

        def reset(self):
            self.seen_rtts = []

    def test_loss_based_protocols_see_placeholder_rtt(self, emulab_link):
        sniffer = self.RttSniffer()
        sim = FluidSimulator(emulab_link, [sniffer])
        sim.run(20)
        # The simulator's own deep copy is the one that ran.
        ran = sim.protocols[0]
        assert len(set(ran.seen_rtts)) == 1  # constant placeholder

    def test_enforcement_can_be_disabled(self, emulab_link):
        config = SimulationConfig(
            initial_windows=[150.0], enforce_loss_based=False
        )
        sniffer = self.RttSniffer()
        sim = FluidSimulator(emulab_link, [sniffer], config)
        sim.run(20)
        ran = sim.protocols[0]
        assert ran.seen_rtts[0] == pytest.approx(
            emulab_link.rtt(150.0)
        )

    def test_vegas_sees_real_rtt(self, emulab_link):
        # Non-loss-based protocols always get the true RTT.
        sim = FluidSimulator(
            emulab_link, [VegasLike(), AIMD(1, 0.5)],
            SimulationConfig(initial_windows=[1.0, 120.0]),
        )
        trace = sim.run(300)
        # Vegas must have backed off due to queueing (Reno fills the buffer),
        # so its tail share is small.
        means = trace.tail(0.3).mean_windows()
        assert means[0] < 0.3 * means[1]


class TestSchedule:
    def test_late_sender_is_nan_before_start(self, emulab_link):
        schedule = EventSchedule().add_sender_start(1, step=50, window=1.0)
        config = SimulationConfig(schedule=schedule)
        sim = FluidSimulator(emulab_link, [AIMD(1, 0.5)] * 2, config)
        trace = sim.run(100)
        assert np.all(np.isnan(trace.windows[:50, 1]))
        assert trace.windows[50, 1] == pytest.approx(1.0)

    def test_schedule_referencing_missing_sender_rejected(self, emulab_link):
        schedule = EventSchedule().add_sender_start(5, step=0)
        with pytest.raises(ValueError, match="sender 5"):
            FluidSimulator(
                emulab_link, [AIMD(1, 0.5)], SimulationConfig(schedule=schedule)
            )

    def test_link_change_mid_run(self, emulab_link):
        # Halve the bandwidth at step 100: capacity series must reflect it.
        smaller = emulab_link.with_bandwidth(emulab_link.bandwidth / 2)
        schedule = EventSchedule().add_link_change(100, smaller)
        config = SimulationConfig(schedule=schedule)
        sim = FluidSimulator(emulab_link, [AIMD(1, 0.5)], config)
        trace = sim.run(200)
        assert trace.capacities[99] == pytest.approx(emulab_link.capacity)
        assert trace.capacities[100] == pytest.approx(smaller.capacity)


class TestRandomLoss:
    def test_constant_loss_starves_reno(self):
        # The PCC motivating scenario: Reno cannot grow under 1% random loss.
        link = Link.infinite()
        config = SimulationConfig(
            initial_windows=[1.0], loss_process=BernoulliLoss(0.01)
        )
        sim = FluidSimulator(link, [AIMD(1, 0.5)], config)
        trace = sim.run(500)
        assert trace.sender_series(0)[-1] < 10.0

    def test_observed_loss_combines_sources(self, emulab_link):
        config = SimulationConfig(
            initial_windows=[200.0], loss_process=BernoulliLoss(0.1)
        )
        sim = FluidSimulator(emulab_link, [AIMD(1, 0.5)], config)
        trace = sim.run(1)
        congestion = trace.congestion_loss[0]
        observed = trace.observed_loss[0, 0]
        assert observed == pytest.approx(1 - (1 - congestion) * (1 - 0.1))


class TestRunHomogeneous:
    def test_rejects_nonpositive_senders(self, emulab_link):
        with pytest.raises(ValueError):
            run_homogeneous(emulab_link, AIMD(1, 0.5), 0, 10)

    def test_n_senders_columns(self, emulab_link):
        trace = run_homogeneous(emulab_link, AIMD(1, 0.5), 4, 50)
        assert trace.n_senders == 4
