"""Fast-path eligibility gating in FluidSimulator (repro.model.dynamics).

Bit-identity of the two paths is property-tested in
``tests/property/test_prop_vectorized.py``; these tests pin down exactly
which configurations are allowed onto the vectorized path.
"""

import numpy as np
import pytest

from repro.model.dynamics import FluidSimulator, SimulationConfig
from repro.model.events import EventSchedule
from repro.model.link import Link
from repro.model.random_loss import BernoulliLoss, GilbertElliottLoss
from repro.protocols.aimd import AIMD
from repro.protocols.cubic import CUBIC
from repro.protocols.mimd import MIMD


@pytest.fixture
def link():
    return Link.from_mbps(20, 42, 100)


def eligible(link, protocols, config=None):
    return FluidSimulator(link, protocols, config)._fast_path_eligible()


class TestEligible:
    def test_homogeneous_aimd(self, link):
        assert eligible(link, [AIMD(1, 0.5)] * 3)

    def test_single_sender(self, link):
        assert eligible(link, [AIMD(1, 0.5)])

    def test_deterministic_bernoulli_loss(self, link):
        cfg = SimulationConfig(loss_process=BernoulliLoss(0.01))
        assert eligible(link, [AIMD(1, 0.5)] * 2, cfg)

    def test_separate_instances_with_equal_params(self, link):
        assert eligible(link, [AIMD(1, 0.5), AIMD(1.0, 0.5)])


class TestIneligible:
    def test_opt_out_flag(self, link):
        cfg = SimulationConfig(allow_vectorized=False)
        assert not eligible(link, [AIMD(1, 0.5)] * 2, cfg)

    def test_heterogeneous_parameters(self, link):
        assert not eligible(link, [AIMD(1, 0.5), AIMD(2, 0.5)])

    def test_heterogeneous_types(self, link):
        assert not eligible(link, [AIMD(1, 0.5), MIMD(1.01, 0.875)])

    def test_protocol_without_vectorized_support(self, link):
        assert not eligible(link, [CUBIC(0.4, 0.8)] * 2)

    def test_unsynchronized_loss(self, link):
        cfg = SimulationConfig(unsynchronized_loss=True)
        assert not eligible(link, [AIMD(1, 0.5)] * 2, cfg)

    def test_integer_windows(self, link):
        cfg = SimulationConfig(integer_windows=True)
        assert not eligible(link, [AIMD(1, 0.5)] * 2, cfg)

    def test_staggered_starts(self, link):
        schedule = EventSchedule()
        schedule.add_sender_start(1, step=100, window=1.0)
        cfg = SimulationConfig(schedule=schedule)
        assert not eligible(link, [AIMD(1, 0.5)] * 2, cfg)

    def test_link_changes(self, link):
        schedule = EventSchedule()
        schedule.add_link_change(step=100, link=link.with_bandwidth(2 * link.bandwidth))
        cfg = SimulationConfig(schedule=schedule)
        assert not eligible(link, [AIMD(1, 0.5)] * 2, cfg)

    def test_ecn_marking(self):
        ecn_link = Link.from_mbps(20, 42, 100)
        ecn_link = Link(
            bandwidth=ecn_link.bandwidth,
            theta=ecn_link.theta,
            buffer_size=ecn_link.buffer_size,
            ecn_threshold=10.0,
        )
        assert not eligible(ecn_link, [AIMD(1, 0.5)] * 2)

    def test_random_bernoulli_loss(self, link):
        cfg = SimulationConfig(
            loss_process=BernoulliLoss(0.01, deterministic=False)
        )
        assert not eligible(link, [AIMD(1, 0.5)] * 2, cfg)

    def test_gilbert_elliott_loss(self, link):
        cfg = SimulationConfig(loss_process=GilbertElliottLoss())
        assert not eligible(link, [AIMD(1, 0.5)] * 2, cfg)


class TestDispatch:
    def test_ineligible_run_still_works(self, link):
        cfg = SimulationConfig(unsynchronized_loss=True, seed=7)
        trace = FluidSimulator(link, [AIMD(1, 0.5)] * 2, cfg).run(200)
        assert trace.windows.shape == (200, 2)

    def test_eligible_run_matches_structure(self, link):
        trace = FluidSimulator(link, [AIMD(1, 0.5)] * 2).run(200)
        assert trace.windows.shape == (200, 2)
        assert np.all(np.isfinite(trace.windows))
        assert np.all(trace.capacities == link.capacity)
