"""The ECN extension and DCTCP (repro.model.link ECN, repro.protocols.dctcp)."""

import pytest

from repro.model.dynamics import FluidSimulator
from repro.model.link import Link
from repro.model.sender import Observation
from repro.protocols.aimd import AIMD
from repro.protocols.dctcp import DCTCP


def obs(window: float, loss: float = 0.0, ecn: float = 0.0) -> Observation:
    return Observation(step=0, window=window, loss_rate=loss, rtt=0.042,
                       min_rtt=0.042, ecn_fraction=ecn)


@pytest.fixture
def ecn_link(emulab_link) -> Link:
    return Link(
        bandwidth=emulab_link.bandwidth,
        theta=emulab_link.theta,
        buffer_size=emulab_link.buffer_size,
        ecn_threshold=20.0,
    )


class TestMarkFraction:
    def test_disabled_by_default(self, emulab_link):
        assert emulab_link.mark_fraction(1e6) == 0.0

    def test_zero_below_threshold(self, ecn_link):
        # Queue below K = 20: C + K = 90 MSS.
        assert ecn_link.mark_fraction(85.0) == 0.0
        assert ecn_link.mark_fraction(90.0) == 0.0

    def test_fraction_above_threshold(self, ecn_link):
        # X = 100: 10 MSS sit beyond the K-th slot out of 100 sent.
        assert ecn_link.mark_fraction(100.0) == pytest.approx(0.1)

    def test_capped_by_pipe(self, ecn_link):
        # Beyond the pipe, only delivered traffic can be marked.
        fraction = ecn_link.mark_fraction(400.0)
        assert fraction == pytest.approx((170.0 - 90.0) / 400.0)

    def test_monotone_in_load(self, ecn_link):
        values = [ecn_link.mark_fraction(x) for x in (95, 110, 140, 170)]
        assert values == sorted(values)

    def test_threshold_validation(self, emulab_link):
        with pytest.raises(ValueError):
            Link(bandwidth=1000, theta=0.021, buffer_size=10, ecn_threshold=11)
        with pytest.raises(ValueError):
            Link(bandwidth=1000, theta=0.021, buffer_size=10, ecn_threshold=-1)

    def test_negative_window_rejected(self, ecn_link):
        with pytest.raises(ValueError):
            ecn_link.mark_fraction(-1.0)


class TestDctcpRules:
    def test_additive_increase_without_signal(self):
        assert DCTCP(a=1).next_window(obs(10.0)) == pytest.approx(11.0)

    def test_proportional_backoff(self):
        protocol = DCTCP(g=1.0)  # alpha tracks F exactly
        # F = 0.5 -> alpha = 0.5 -> multiply by (1 - 0.25).
        assert protocol.next_window(obs(100.0, ecn=0.5)) == pytest.approx(75.0)

    def test_small_marks_mean_gentle_backoff(self):
        protocol = DCTCP(g=1.0)
        assert protocol.next_window(obs(100.0, ecn=0.05)) == pytest.approx(97.5)

    def test_ewma_smooths_alpha(self):
        protocol = DCTCP(g=0.5)
        protocol.next_window(obs(10.0, ecn=1.0))
        assert protocol.alpha == pytest.approx(0.5)
        protocol.next_window(obs(10.0, ecn=0.0))
        assert protocol.alpha == pytest.approx(0.25)

    def test_loss_falls_back_to_halving(self):
        assert DCTCP().next_window(obs(100.0, loss=0.01)) == pytest.approx(50.0)

    def test_reset_clears_alpha(self):
        protocol = DCTCP(g=1.0)
        protocol.next_window(obs(10.0, ecn=1.0))
        protocol.reset()
        assert protocol.alpha == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DCTCP(a=0)
        with pytest.raises(ValueError):
            DCTCP(g=0.0)
        with pytest.raises(ValueError):
            DCTCP(g=1.5)

    def test_registry_spec(self):
        from repro.protocols.registry import make_protocol

        assert isinstance(make_protocol("dctcp"), DCTCP)
        assert make_protocol("DCTCP(1, 0.125)").g == pytest.approx(0.125)


class TestDctcpDynamics:
    def test_zero_loss_full_utilization_low_latency(self, ecn_link):
        # The DCTCP trifecta on an ECN link.
        trace = FluidSimulator(ecn_link, [DCTCP()] * 2).run(2000)
        tail = trace.tail(0.5)
        assert tail.congestion_loss.max() == 0.0
        assert tail.utilization().mean() > 0.95
        assert tail.rtt_inflation().mean() < 0.5

    def test_lower_latency_than_reno_on_same_link(self, ecn_link):
        dctcp = FluidSimulator(ecn_link, [DCTCP()] * 2).run(2000)
        reno = FluidSimulator(ecn_link, [AIMD(1, 0.5)] * 2).run(2000)
        assert (
            dctcp.tail(0.5).rtt_inflation().mean()
            < 0.5 * reno.tail(0.5).rtt_inflation().mean()
        )

    def test_reno_ignores_marks_and_still_drops(self, ecn_link):
        reno = FluidSimulator(ecn_link, [AIMD(1, 0.5)] * 2).run(2000)
        assert reno.tail(0.5).congestion_loss.max() > 0.0

    def test_without_ecn_dctcp_degrades_to_loss_based(self, emulab_link):
        # No marks: increase to loss, halve — classic-TCP-like behaviour.
        trace = FluidSimulator(emulab_link, [DCTCP()] * 2).run(2000)
        tail = trace.tail(0.5)
        assert tail.congestion_loss.max() > 0.0
        assert tail.utilization().mean() > 0.7

    def test_dctcp_converges_to_fairness(self, ecn_link):
        from repro.model.dynamics import SimulationConfig

        sim = FluidSimulator(
            ecn_link, [DCTCP()] * 2,
            SimulationConfig(initial_windows=[120.0, 1.0]),
        )
        trace = sim.run(4000)
        means = trace.tail(0.25).mean_windows()
        assert min(means) / max(means) > 0.8
