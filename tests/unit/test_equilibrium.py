"""Analytic limit cycles vs the simulator (repro.core.theory.equilibrium)."""

import numpy as np
import pytest

from repro.core.theory.equilibrium import (
    LimitCycle,
    aimd_limit_cycle,
    mimd_limit_cycle,
    robust_aimd_operating_point,
)
from repro.model.dynamics import run_homogeneous
from repro.protocols.aimd import AIMD
from repro.protocols.robust_aimd import RobustAIMD


class TestLimitCycleDataclass:
    def test_derived_rates(self):
        cycle = LimitCycle(peak_window=100, trough_window=50, period_steps=50,
                           loss_per_event=0.01, average_window=75)
        assert cycle.loss_event_rate == pytest.approx(0.02)
        assert cycle.average_loss == pytest.approx(0.0002)

    def test_validation(self):
        with pytest.raises(ValueError):
            LimitCycle(10, 20, 5, 0.0, 15)  # peak below trough
        with pytest.raises(ValueError):
            LimitCycle(20, 10, 0, 0.0, 15)
        with pytest.raises(ValueError):
            LimitCycle(20, 10, 5, 1.0, 15)


class TestAimdCycleVsSimulator:
    @pytest.mark.parametrize("n", [1, 2, 4])
    @pytest.mark.parametrize("b", [0.5, 0.8])
    def test_peak_matches_simulation(self, emulab_link, n, b):
        cycle = aimd_limit_cycle(1.0, b, emulab_link, n)
        trace = run_homogeneous(emulab_link, AIMD(1.0, b), n, 3000)
        measured_peak = float(np.nanmax(trace.tail(0.3).windows))
        # The analytic peak is exact up to the integer-step phase (one
        # increment of slack).
        assert measured_peak == pytest.approx(cycle.peak_window, abs=1.5)

    def test_trough_matches_simulation(self, emulab_link):
        cycle = aimd_limit_cycle(1.0, 0.5, emulab_link, 2)
        trace = run_homogeneous(emulab_link, AIMD(1.0, 0.5), 2, 3000)
        measured_trough = float(np.nanmin(trace.tail(0.3).windows))
        assert measured_trough == pytest.approx(cycle.trough_window, abs=1.5)

    def test_loss_per_event_matches_simulation(self, emulab_link):
        cycle = aimd_limit_cycle(1.0, 0.5, emulab_link, 2)
        trace = run_homogeneous(emulab_link, AIMD(1.0, 0.5), 2, 3000)
        tail_loss = trace.tail(0.3).congestion_loss
        measured = float(tail_loss[tail_loss > 0].max())
        assert measured == pytest.approx(cycle.loss_per_event, rel=0.05)

    def test_period_matches_simulation(self, emulab_link):
        cycle = aimd_limit_cycle(1.0, 0.5, emulab_link, 2)
        trace = run_homogeneous(emulab_link, AIMD(1.0, 0.5), 2, 3000)
        lossy = np.nonzero(trace.tail(0.3).congestion_loss > 0)[0]
        measured_period = float(np.diff(lossy).mean())
        assert measured_period == pytest.approx(cycle.period_steps, rel=0.1)

    def test_average_window_between_extremes(self, emulab_link):
        cycle = aimd_limit_cycle(1.0, 0.5, emulab_link, 2)
        assert cycle.trough_window < cycle.average_window < cycle.peak_window

    def test_utilization_formula(self, emulab_link):
        cycle = aimd_limit_cycle(1.0, 0.5, emulab_link, 2)
        util = cycle.average_utilization(emulab_link, 2)
        trace = run_homogeneous(emulab_link, AIMD(1.0, 0.5), 2, 3000)
        measured = float(trace.tail(0.3).total_window().mean()) / emulab_link.capacity
        assert util == pytest.approx(measured, rel=0.05)


class TestMimdCycle:
    def test_period_is_recovery_length(self, emulab_link):
        cycle = mimd_limit_cycle(1.01, 0.875, emulab_link, 1)
        import math

        expected = math.ceil(math.log(1 / 0.875) / math.log(1.01)) + 1
        assert cycle.period_steps == expected

    def test_loss_per_event(self, emulab_link):
        cycle = mimd_limit_cycle(1.01, 0.875, emulab_link, 1)
        assert cycle.loss_per_event == pytest.approx(0.01 / 1.01)

    def test_validation(self, emulab_link):
        with pytest.raises(ValueError):
            mimd_limit_cycle(1.0, 0.875, emulab_link, 1)
        with pytest.raises(ValueError):
            mimd_limit_cycle(1.01, 1.0, emulab_link, 1)


class TestRobustAimdOperatingPoint:
    def test_degenerates_to_aimd_when_threshold_below_quantum(self, emulab_link):
        # At 20 Mbps the n=2 quantum (0.0116) exceeds eps=0.01.
        robust = robust_aimd_operating_point(1.0, 0.8, 0.01, emulab_link, 2)
        plain = aimd_limit_cycle(1.0, 0.8, emulab_link, 2)
        assert robust == plain

    def test_binding_regime_caps_loss_at_epsilon(self, big_link):
        # At 100 Mbps the quantum is ~0.0044 < eps: the threshold binds.
        cycle = robust_aimd_operating_point(1.0, 0.8, 0.01, big_link, 2)
        assert cycle.loss_per_event == pytest.approx(0.01)
        assert cycle.peak_window == pytest.approx(
            big_link.pipe_limit / 0.99 / 2
        )

    def test_binding_regime_matches_simulation(self, big_link):
        cycle = robust_aimd_operating_point(1.0, 0.8, 0.01, big_link, 2)
        trace = run_homogeneous(
            big_link, RobustAIMD(1.0, 0.8, 0.01), 2, 4000
        )
        measured_peak = float(np.nanmax(trace.tail(0.3).windows))
        assert measured_peak == pytest.approx(cycle.peak_window, rel=0.02)

    def test_validation(self, emulab_link):
        with pytest.raises(ValueError):
            robust_aimd_operating_point(1.0, 0.8, 0.0, emulab_link, 2)
