"""Event schedules and sender state (repro.model.events, repro.model.sender)."""

import math

import pytest

from repro.model.events import EventSchedule, LinkChange, SenderStart
from repro.model.link import Link
from repro.model.sender import Observation, SenderState


class TestSenderStart:
    def test_fields(self):
        event = SenderStart(sender=1, step=10, window=5.0)
        assert (event.sender, event.step, event.window) == (1, 10, 5.0)

    @pytest.mark.parametrize("kwargs", [
        {"sender": -1, "step": 0},
        {"sender": 0, "step": -1},
        {"sender": 0, "step": 0, "window": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SenderStart(**kwargs)


class TestLinkChange:
    def test_negative_step_rejected(self, emulab_link):
        with pytest.raises(ValueError):
            LinkChange(step=-1, link=emulab_link)


class TestSchedule:
    def test_start_for_returns_last_registration(self):
        schedule = EventSchedule()
        schedule.add_sender_start(0, 10)
        schedule.add_sender_start(0, 20)
        assert schedule.start_for(0).step == 20

    def test_start_for_missing_sender(self):
        assert EventSchedule().start_for(3) is None

    def test_link_at_without_changes_returns_default(self, emulab_link):
        assert EventSchedule().link_at(5, emulab_link) is emulab_link

    def test_link_at_applies_latest_change(self, emulab_link):
        half = emulab_link.with_bandwidth(emulab_link.bandwidth / 2)
        quarter = emulab_link.with_bandwidth(emulab_link.bandwidth / 4)
        schedule = (
            EventSchedule()
            .add_link_change(10, half)
            .add_link_change(20, quarter)
        )
        assert schedule.link_at(5, emulab_link) is emulab_link
        assert schedule.link_at(15, emulab_link) is half
        assert schedule.link_at(25, emulab_link) is quarter

    def test_max_step(self, emulab_link):
        schedule = EventSchedule().add_sender_start(0, 7).add_link_change(
            12, emulab_link
        )
        assert schedule.max_step() == 12

    def test_max_step_empty(self):
        assert EventSchedule().max_step() == 0

    def test_chaining_returns_self(self):
        schedule = EventSchedule()
        assert schedule.add_sender_start(0, 1) is schedule


class TestSenderState:
    def test_active_respects_start_step(self):
        state = SenderState(index=0, window=1.0, start_step=5)
        assert not state.active(4)
        assert state.active(5)

    def test_record_appends_history(self):
        state = SenderState(index=0, window=1.0)
        state.record(1.0, 0.0, 0.042)
        state.record(2.0, 0.1, 0.05)
        assert state.windows == [1.0, 2.0]
        assert state.loss_rates == [0.0, 0.1]
        assert state.rtts == [0.042, 0.05]

    def test_min_rtt_tracks_minimum(self):
        state = SenderState(index=0, window=1.0)
        state.record(1.0, 0.0, 0.05)
        state.record(1.0, 0.0, 0.042)
        state.record(1.0, 0.0, 0.06)
        assert state.min_rtt == pytest.approx(0.042)

    def test_observation_reflects_last_step(self):
        state = SenderState(index=0, window=1.0)
        state.record(3.0, 0.2, 0.05)
        obs = state.observation(step=7)
        assert obs == Observation(step=7, window=3.0, loss_rate=0.2, rtt=0.05,
                                  min_rtt=0.05)

    def test_observation_without_history_raises(self):
        with pytest.raises(ValueError):
            SenderState(index=0, window=1.0).observation(0)

    def test_initial_min_rtt_is_inf(self):
        assert math.isinf(SenderState(index=0, window=1.0).min_rtt)
