"""The unified executor: planning, dedup tiers, routing, run_specs edges."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.backends import LoweringError, ScenarioSpec, run_spec, run_specs
from repro.exec import (
    Executor,
    SpecJob,
    default_executor,
    map_calls,
    reset_default_executor,
)
from repro.model.link import Link
from repro.netmodel.topology import single_link
from repro.perf.cache import cache_enabled
from repro.protocols.aimd import AIMD

_TRACE_FIELDS = ("windows", "observed_loss", "congestion_loss", "rtts",
                 "capacities", "pipe_limits", "base_rtts", "flow_rtts")


def _assert_bit_identical(a, b) -> None:
    for name in _TRACE_FIELDS:
        x = np.ascontiguousarray(getattr(a, name))
        y = np.ascontiguousarray(getattr(b, name))
        assert x.shape == y.shape, name
        assert np.array_equal(x.view(np.uint64), y.view(np.uint64)), name


def _spec(alpha: float = 1.0, steps: int = 32) -> ScenarioSpec:
    return ScenarioSpec(
        protocols=[AIMD(alpha, 0.5)] * 2,
        link=Link.from_mbps(20, 42, 100),
        steps=steps,
    )


def _failing_spec() -> ScenarioSpec:
    """Constructs fine, raises LoweringError when the fluid backend runs it."""
    link = Link.from_mbps(20, 42, 100)
    return ScenarioSpec(
        protocols=[AIMD(1, 0.5)] * 2,
        link=link,
        steps=32,
        topology=single_link(link, 1),
    )


@pytest.fixture(autouse=True)
def _fresh_default_executor():
    reset_default_executor()
    yield
    reset_default_executor()


class _GateJob:
    """A keyed test job whose run() blocks on an event (in-flight tests)."""

    kind = "gate"

    def __init__(self, keyed: str, gate: threading.Event,
                 started: threading.Event | None = None,
                 fail: bool = False) -> None:
        self._key = keyed
        self._gate = gate
        self._started = started
        self._fail = fail

    def key(self) -> str:
        return self._key

    def probe(self, cache) -> None:
        return None

    def run(self, use_cache: bool = True) -> str:
        if self._started is not None:
            self._started.set()
        assert self._gate.wait(timeout=30)
        if self._fail:
            raise ValueError("gate job told to fail")
        return f"value:{self._key}"


class TestDedupTiers:
    def test_within_submission_followers(self):
        executor = Executor()
        spec = _spec()
        outcomes = executor.submit(
            [SpecJob(spec=spec), SpecJob(spec=spec), SpecJob(spec=_spec(2.0))]
        )
        assert [o.source for o in outcomes] == ["computed", "dedup", "computed"]
        _assert_bit_identical(outcomes[0].value, outcomes[1].value)
        stats = executor.snapshot()
        assert stats["computed"] == 2
        assert stats["deduped"] == 1
        assert stats["jobs"] == 3

    def test_store_tier_serves_second_submission(self, tmp_path):
        executor = Executor()
        spec = _spec()
        with cache_enabled(tmp_path):
            first = executor.submit([SpecJob(spec=spec)])
            second = executor.submit([SpecJob(spec=spec)])
        assert first[0].source == "computed"
        assert second[0].source == "cache"
        _assert_bit_identical(first[0].value, second[0].value)
        assert executor.snapshot()["cache_hits"] == 1

    def test_inflight_tier_one_computation_many_waiters(self):
        executor = Executor()
        gate = threading.Event()
        started = threading.Event()
        results: dict[str, list] = {}

        def leader():
            results["leader"] = executor.submit(
                [_GateJob("k", gate, started)]
            )

        def waiter(name):
            results[name] = executor.submit([_GateJob("k", gate)])

        lead = threading.Thread(target=leader)
        lead.start()
        assert started.wait(timeout=30)
        waiters = [
            threading.Thread(target=waiter, args=(f"w{i}",)) for i in range(2)
        ]
        for thread in waiters:
            thread.start()
        # Both waiters must have attached to the in-flight slot before we
        # release the leader, or they would just compute themselves.
        for _ in range(3000):
            if executor.snapshot()["inflight_waits"] == 2:
                break
            threading.Event().wait(0.01)
        assert executor.snapshot()["inflight_waits"] == 2
        gate.set()
        lead.join(timeout=30)
        for thread in waiters:
            thread.join(timeout=30)
        assert results["leader"][0].source == "computed"
        for name in ("w0", "w1"):
            assert results[name][0].source == "inflight"
            assert results[name][0].value == "value:k"
        assert executor.snapshot()["computed"] == 1

    def test_inflight_failure_reaches_waiter(self):
        executor = Executor()
        gate = threading.Event()
        started = threading.Event()
        errors: dict[str, BaseException] = {}

        def leader():
            try:
                executor.submit([_GateJob("bad", gate, started, fail=True)])
            except ValueError as exc:
                errors["leader"] = exc

        def waiter():
            try:
                executor.submit([_GateJob("bad", gate)])
            except ValueError as exc:
                errors["waiter"] = exc

        lead = threading.Thread(target=leader)
        lead.start()
        assert started.wait(timeout=30)
        wait = threading.Thread(target=waiter)
        wait.start()
        for _ in range(3000):
            if executor.snapshot()["inflight_waits"] == 1:
                break
            threading.Event().wait(0.01)
        gate.set()
        lead.join(timeout=30)
        wait.join(timeout=30)
        assert isinstance(errors["leader"], ValueError)
        assert isinstance(errors["waiter"], ValueError)
        # The slot was released: a later submission computes afresh.
        gate.set()
        fresh = executor.submit([_GateJob("bad", gate)], skip_errors=True)
        assert fresh[0].source == "computed"

    def test_failed_leader_marks_followers(self):
        executor = Executor()
        bad = _failing_spec()
        outcomes = executor.submit(
            [SpecJob(spec=bad), SpecJob(spec=bad)], skip_errors=True
        )
        assert [o.ok for o in outcomes] == [False, False]
        assert [o.source for o in outcomes] == ["computed", "dedup"]
        assert outcomes[1].value is None
        assert executor.snapshot()["errors"] == 2


class TestRunSpecsEdges:
    @pytest.mark.parametrize("backend", ["fluid", "meanfield", "packet",
                                         "network"])
    @pytest.mark.parametrize("batch", [False, True])
    def test_empty_list_every_backend(self, backend, batch):
        assert run_specs([], backend=backend, batch=batch) == []

    @pytest.mark.parametrize("batch", [False, True])
    def test_skip_errors_leaves_aligned_none_holes(self, batch):
        good = [_spec(1.0), _spec(2.0)]
        traces = run_specs(
            [good[0], _failing_spec(), good[1]],
            batch=batch, use_cache=False, skip_errors=True,
        )
        assert traces[1] is None
        for trace, spec in zip((traces[0], traces[2]), good):
            _assert_bit_identical(trace, run_spec(spec, "fluid",
                                                  use_cache=False))

    @pytest.mark.parametrize("batch", [False, True])
    def test_first_failure_raises_original_exception(self, batch):
        with pytest.raises(LoweringError):
            run_specs([_spec(), _failing_spec()], batch=batch,
                      use_cache=False)

    def test_batch_without_a_batched_engine_warns_once_then_falls_back(
        self, monkeypatch
    ):
        # A backend outside the batched lanes: batch=True warns exactly
        # once, naming the backend, then takes the per-spec path and
        # matches the serial result bit for bit.
        import warnings

        import repro.exec.executor as executor_mod
        from repro.backends.base import _BACKENDS, Backend, get_backend

        class LanelessBackend(Backend):
            name = "laneless"

            def run(self, spec):
                return get_backend("fluid").run(spec)

            def cache_key(self, spec):
                return None

        monkeypatch.setitem(_BACKENDS, "laneless", LanelessBackend())
        monkeypatch.setattr(executor_mod, "_warned_laneless", set())
        specs = [_spec(1.0, steps=24), _spec(1.5, steps=24)]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            batched = run_specs(specs, backend="laneless", batch=True,
                                use_cache=False)
            run_specs(specs, backend="laneless", batch=True, use_cache=False)
        laneless = [w for w in caught
                    if "has no batched engine" in str(w.message)]
        assert len(laneless) == 1
        assert "'laneless'" in str(laneless[0].message)
        serial = run_specs(specs, backend="laneless", use_cache=False)
        for a, b in zip(batched, serial):
            _assert_bit_identical(a, b)

    def test_pooled_matches_serial(self):
        specs = [_spec(1.0), _spec(2.0), _spec(3.0)]
        pooled = run_specs(specs, workers=2, use_cache=False)
        serial = run_specs(specs, use_cache=False)
        for a, b in zip(pooled, serial):
            _assert_bit_identical(a, b)

    def test_duplicate_specs_share_one_computation(self):
        spec = _spec()
        traces = run_specs([spec, spec], use_cache=False)
        _assert_bit_identical(traces[0], traces[1])
        assert default_executor().snapshot()["deduped"] == 1


class TestMapCalls:
    def test_results_in_cell_order(self):
        cells = [{"x": i} for i in range(5)]
        assert map_calls(_double, cells) == [0, 2, 4, 6, 8]

    def test_skip_errors_holes(self):
        cells = [{"x": 1}, {"x": -1}, {"x": 2}]
        assert map_calls(_refuses_negative, cells, skip_errors=True) == \
            [1, None, 2]

    def test_error_propagates(self):
        with pytest.raises(ValueError):
            map_calls(_refuses_negative, [{"x": -1}])

    def test_pooled_matches_serial(self):
        cells = [{"x": i} for i in range(4)]
        assert map_calls(_double, cells, workers=2) == map_calls(_double, cells)


def _double(x: int) -> int:
    return 2 * x


def _refuses_negative(x: int) -> int:
    if x < 0:
        raise ValueError("negative")
    return x
