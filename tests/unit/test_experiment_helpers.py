"""Unit tests for experiment-driver internals.

The integration suite runs the drivers end-to-end; these tests pin the
helper functions — theory-row lookup, loss quantum, kernel Cubic time
scaling, cell measurement plumbing — at unit granularity.
"""

import math

import pytest

from repro.experiments.claims import loss_quantum
from repro.experiments.emulab import (
    _theory_row,
    default_protocols,
    kernel_cubic_c_per_round,
)
from repro.experiments.figure1 import measure_aimd_point
from repro.experiments.table1 import paper_protocols
from repro.experiments.table2 import Table2Cell, Table2Result, measure_friendliness
from repro.core.metrics import EstimatorConfig
from repro.model.link import Link
from repro.protocols import presets


class TestLossQuantum:
    def test_formula(self, emulab_link):
        # n = 2, a = 1, pipe = 170: quantum = 2/172.
        assert loss_quantum(emulab_link, 2, 1.0) == pytest.approx(2 / 172)

    def test_shrinks_with_pipe(self, emulab_link, big_link):
        assert loss_quantum(big_link, 2, 1.0) < loss_quantum(emulab_link, 2, 1.0)

    def test_grows_with_senders(self, emulab_link):
        assert loss_quantum(emulab_link, 4, 1.0) > loss_quantum(emulab_link, 2, 1.0)

    def test_validation(self, emulab_link):
        with pytest.raises(ValueError):
            loss_quantum(emulab_link, 0, 1.0)
        with pytest.raises(ValueError):
            loss_quantum(emulab_link, 2, 0.0)


class TestKernelCubicScaling:
    def test_42ms_value(self):
        # 0.4 * 0.042^3 ~ 2.96e-5 segments per round^3.
        assert kernel_cubic_c_per_round(42.0) == pytest.approx(2.96e-5, rel=0.01)

    def test_cubic_time_scaling(self):
        # Slower RTTs mean fewer rounds per second: c_round grows as rtt^3.
        assert kernel_cubic_c_per_round(84.0) == pytest.approx(
            8 * kernel_cubic_c_per_round(42.0)
        )

    def test_recovery_time_is_seconds_scale(self):
        # K (rounds) * rtt should be ~ (W_max * 0.2 / 0.4)^(1/3) seconds.
        c_round = kernel_cubic_c_per_round(42.0)
        w_max = 80.0
        k_rounds = (w_max * 0.2 / c_round) ** (1 / 3)
        k_seconds = k_rounds * 0.042
        assert k_seconds == pytest.approx((w_max * 0.2 / 0.4) ** (1 / 3), rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            kernel_cubic_c_per_round(0.0)


class TestEmulabTheoryRows:
    def test_rows_resolve_for_all_defaults(self):
        for name in default_protocols():
            row = _theory_row(name, 70.0, 100.0, 2)
            assert row.protocol

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            _theory_row("bbr", 70.0, 100.0, 2)

    def test_cubic_row_uses_kernel_scaling(self):
        row = _theory_row("cubic", 70.0, 100.0, 2)
        assert row.worst_case.fast_utilization == pytest.approx(
            kernel_cubic_c_per_round(42.0)
        )


class TestTable1Protocols:
    def test_paper_roster(self):
        names = [p.name for p in paper_protocols()]
        assert names == [
            "AIMD(1,0.5)",
            "MIMD(1.01,0.875)",
            "BIN(1,1,1,0)",
            "CUBIC(0.4,0.8)",
            "Robust-AIMD(1,0.8,0.01)",
        ]


class TestTable2Pieces:
    def test_cell_improvement(self):
        cell = Table2Cell(2, 20, friendliness_robust_aimd=0.06,
                          friendliness_pcc=0.02)
        assert cell.improvement == pytest.approx(3.0)

    def test_cell_improvement_with_zero_pcc(self):
        cell = Table2Cell(2, 20, friendliness_robust_aimd=0.06,
                          friendliness_pcc=0.0)
        assert math.isinf(cell.improvement)

    def test_result_aggregates(self):
        result = Table2Result(cells=[
            Table2Cell(2, 20, 0.06, 0.02),
            Table2Cell(2, 30, 0.08, 0.02),
        ])
        assert result.mean_improvement == pytest.approx(3.5)
        assert result.min_improvement == pytest.approx(3.0)
        assert result.all_friendlier

    def test_measure_friendliness_validation(self):
        with pytest.raises(ValueError):
            measure_friendliness(presets.robust_aimd_paper(), 1, 20)

    def test_reno_against_itself_is_parity(self):
        alpha = measure_friendliness(presets.reno(), 2, 20, steps=1200)
        assert alpha == pytest.approx(1.0, abs=0.05)


class TestFigure1Helpers:
    def test_measure_aimd_point_fields(self, emulab_link):
        point = measure_aimd_point(
            1.0, 0.5, emulab_link, EstimatorConfig(steps=1200)
        )
        assert point.predicted_friendliness == pytest.approx(1.0)
        assert point.measured_friendliness == pytest.approx(1.0, abs=0.05)
        assert point.friendliness_error() < 0.05
