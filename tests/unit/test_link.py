"""The bottleneck link: Eq. (1) RTT and droptail loss (repro.model.link)."""

import math

import pytest

from repro.model.link import Link


class TestConstruction:
    def test_from_mbps_matches_paper_capacity(self, emulab_link):
        assert emulab_link.capacity == pytest.approx(70.0)
        assert emulab_link.base_rtt == pytest.approx(0.042)
        assert emulab_link.pipe_limit == pytest.approx(170.0)

    @pytest.mark.parametrize("bad", [0.0, -5.0])
    def test_bad_bandwidth_rejected(self, bad):
        with pytest.raises(ValueError):
            Link(bandwidth=bad, theta=0.021, buffer_size=100)

    def test_bad_theta_rejected(self):
        with pytest.raises(ValueError):
            Link(bandwidth=1000, theta=0.0, buffer_size=100)

    def test_negative_buffer_rejected(self):
        with pytest.raises(ValueError):
            Link(bandwidth=1000, theta=0.021, buffer_size=-1)

    def test_timeout_below_base_rtt_rejected(self):
        with pytest.raises(ValueError):
            Link(bandwidth=1000, theta=0.021, buffer_size=100, timeout_rtt=0.01)

    def test_default_timeout_exceeds_full_buffer_rtt(self, emulab_link):
        assert emulab_link.timeout_rtt > emulab_link.full_buffer_rtt()

    def test_infinite_link_has_huge_capacity(self):
        link = Link.infinite()
        assert link.capacity > 1e10
        assert link.loss_rate(1e6) == 0.0


class TestRtt:
    """The paper's Eq. (1)."""

    def test_below_capacity_gives_base_rtt(self, emulab_link):
        assert emulab_link.rtt(0.0) == pytest.approx(emulab_link.base_rtt)
        assert emulab_link.rtt(69.9) == pytest.approx(emulab_link.base_rtt)

    def test_exact_capacity_gives_base_rtt(self, emulab_link):
        assert emulab_link.rtt(70.0) == pytest.approx(emulab_link.base_rtt)

    def test_queueing_delay_grows_linearly(self, emulab_link):
        # X = C + q queues q MSS, adding q / B seconds.
        q = 50.0
        expected = emulab_link.base_rtt + q / emulab_link.bandwidth
        assert emulab_link.rtt(70.0 + q) == pytest.approx(expected)

    def test_at_pipe_limit_returns_timeout(self, emulab_link):
        # X = C + tau is the boundary: Eq. (1) switches to Delta.
        assert emulab_link.rtt(emulab_link.pipe_limit) == pytest.approx(
            emulab_link.timeout_rtt
        )

    def test_beyond_pipe_limit_returns_timeout(self, emulab_link):
        assert emulab_link.rtt(1e6) == pytest.approx(emulab_link.timeout_rtt)

    def test_negative_window_rejected(self, emulab_link):
        with pytest.raises(ValueError):
            emulab_link.rtt(-1.0)


class TestLoss:
    def test_no_loss_within_pipe(self, emulab_link):
        assert emulab_link.loss_rate(0.0) == 0.0
        assert emulab_link.loss_rate(170.0) == 0.0

    def test_loss_is_excess_fraction(self, emulab_link):
        # X = 2 * (C + tau) drops half the traffic.
        assert emulab_link.loss_rate(340.0) == pytest.approx(0.5)

    def test_loss_monotone_in_window(self, emulab_link):
        losses = [emulab_link.loss_rate(x) for x in (171, 200, 300, 1000)]
        assert losses == sorted(losses)
        assert all(0 < loss < 1 for loss in losses)

    def test_loss_never_reaches_one(self, emulab_link):
        assert emulab_link.loss_rate(1e12) < 1.0

    def test_negative_window_rejected(self, emulab_link):
        with pytest.raises(ValueError):
            emulab_link.loss_rate(-0.1)


class TestQueueOccupancy:
    def test_empty_below_capacity(self, emulab_link):
        assert emulab_link.queue_occupancy(50.0) == 0.0

    def test_partial(self, emulab_link):
        assert emulab_link.queue_occupancy(120.0) == pytest.approx(50.0)

    def test_clamped_at_buffer(self, emulab_link):
        assert emulab_link.queue_occupancy(1e6) == pytest.approx(100.0)


class TestMisc:
    def test_with_bandwidth_changes_capacity(self, emulab_link):
        doubled = emulab_link.with_bandwidth(2 * emulab_link.bandwidth)
        assert doubled.capacity == pytest.approx(2 * emulab_link.capacity)
        assert doubled.buffer_size == emulab_link.buffer_size

    def test_describe_mentions_parameters(self, emulab_link):
        text = emulab_link.describe()
        assert "20.0 Mbps" in text
        assert "42.0 ms" in text

    def test_frozen(self, emulab_link):
        with pytest.raises(Exception):
            emulab_link.bandwidth = 1.0

    def test_full_buffer_rtt(self, emulab_link):
        expected = emulab_link.base_rtt + 100 / emulab_link.bandwidth
        assert emulab_link.full_buffer_rtt() == pytest.approx(expected)

    def test_describe_infinite(self):
        assert "infinite" in Link.infinite().describe()

    def test_timeout_is_finite(self, emulab_link):
        assert math.isfinite(emulab_link.timeout_rtt)


class TestRedMarking:
    """The RED ramp knobs: validation, ramp values, step-ECN coexistence."""

    def _red(self, min_th, max_th, **kwargs):
        return Link(bandwidth=1.0, theta=0.5, buffer_size=100.0,
                    red_min_threshold=min_th, red_max_threshold=max_th,
                    **kwargs)

    def test_requires_both_thresholds(self):
        with pytest.raises(ValueError, match="both"):
            Link(bandwidth=1.0, theta=0.5, buffer_size=100.0,
                 red_min_threshold=10.0)
        with pytest.raises(ValueError, match="both"):
            Link(bandwidth=1.0, theta=0.5, buffer_size=100.0,
                 red_max_threshold=10.0)

    def test_exclusive_with_step_ecn(self):
        with pytest.raises(ValueError, match="mutually"):
            Link(bandwidth=1.0, theta=0.5, buffer_size=100.0,
                 ecn_threshold=5.0, red_min_threshold=10.0,
                 red_max_threshold=20.0)

    def test_thresholds_must_be_ordered_and_within_buffer(self):
        with pytest.raises(ValueError, match="min_th <= max_th"):
            self._red(30.0, 10.0)
        with pytest.raises(ValueError, match="min_th <= max_th"):
            self._red(10.0, 200.0)
        with pytest.raises(ValueError, match="min_th <= max_th"):
            self._red(-1.0, 10.0)

    def test_max_mark_must_be_a_probability(self):
        with pytest.raises(ValueError, match="red_max_mark"):
            self._red(10.0, 30.0, red_max_mark=0.0)
        with pytest.raises(ValueError, match="red_max_mark"):
            self._red(10.0, 30.0, red_max_mark=1.5)

    def test_marking_enabled_property(self, emulab_link):
        assert not emulab_link.marking_enabled
        assert self._red(10.0, 30.0).marking_enabled
        ecn = Link(bandwidth=1.0, theta=0.5, buffer_size=100.0,
                   ecn_threshold=5.0)
        assert ecn.marking_enabled

    def test_no_marks_below_min_threshold(self):
        link = self._red(10.0, 30.0)
        # Queue = X - capacity; capacity = 1.0 * 1.0 = 1 MSS.
        assert link.mark_fraction(link.capacity + 10.0) == 0.0

    def test_ramp_value_matches_triangle_area(self):
        link = self._red(10.0, 30.0, red_max_mark=0.4)
        x = link.capacity + 20.0  # queue 20: halfway up the ramp
        # Integral of the ramp over slots [10, 20]: 0.4 * 10^2 / (2*20).
        expected = (0.4 * 10.0 * 10.0 / (2.0 * 20.0)) / x
        assert link.mark_fraction(x) == pytest.approx(expected)

    def test_queue_beyond_max_threshold_is_fully_marked(self):
        link = self._red(10.0, 30.0)
        x = link.capacity + 50.0  # queue 50: 20 over max_th
        full_ramp = 1.0 * 20.0 / 2.0  # triangle over [10, 30)
        expected = (full_ramp + 20.0) / x
        assert link.mark_fraction(x) == pytest.approx(expected)

    def test_gentle_mode_softens_the_cliff(self):
        classic = self._red(10.0, 30.0, red_max_mark=0.4)
        gentle = self._red(10.0, 30.0, red_max_mark=0.4, red_gentle=True)
        x = classic.capacity + 40.0  # queue 10 beyond max_th
        assert gentle.mark_fraction(x) < classic.mark_fraction(x)
        # Far beyond twice max_th both ramps saturate at certainty.
        deep = Link(bandwidth=1.0, theta=30.0, buffer_size=100.0,
                    red_min_threshold=2.0, red_max_threshold=4.0,
                    red_gentle=True)
        assert deep.mark_fraction(deep.pipe_limit) == pytest.approx(
            Link(bandwidth=1.0, theta=30.0, buffer_size=100.0,
                 red_min_threshold=2.0, red_max_threshold=4.0,
                 ).mark_fraction(deep.pipe_limit), rel=0.2)

    def test_monotone_in_window(self):
        link = self._red(10.0, 30.0, red_max_mark=0.7, red_gentle=True)
        xs = [link.capacity + q for q in range(0, 90, 5)]
        marked = [x * link.mark_fraction(x) for x in xs]
        assert marked == sorted(marked)
