"""The bottleneck link: Eq. (1) RTT and droptail loss (repro.model.link)."""

import math

import pytest

from repro.model.link import Link


class TestConstruction:
    def test_from_mbps_matches_paper_capacity(self, emulab_link):
        assert emulab_link.capacity == pytest.approx(70.0)
        assert emulab_link.base_rtt == pytest.approx(0.042)
        assert emulab_link.pipe_limit == pytest.approx(170.0)

    @pytest.mark.parametrize("bad", [0.0, -5.0])
    def test_bad_bandwidth_rejected(self, bad):
        with pytest.raises(ValueError):
            Link(bandwidth=bad, theta=0.021, buffer_size=100)

    def test_bad_theta_rejected(self):
        with pytest.raises(ValueError):
            Link(bandwidth=1000, theta=0.0, buffer_size=100)

    def test_negative_buffer_rejected(self):
        with pytest.raises(ValueError):
            Link(bandwidth=1000, theta=0.021, buffer_size=-1)

    def test_timeout_below_base_rtt_rejected(self):
        with pytest.raises(ValueError):
            Link(bandwidth=1000, theta=0.021, buffer_size=100, timeout_rtt=0.01)

    def test_default_timeout_exceeds_full_buffer_rtt(self, emulab_link):
        assert emulab_link.timeout_rtt > emulab_link.full_buffer_rtt()

    def test_infinite_link_has_huge_capacity(self):
        link = Link.infinite()
        assert link.capacity > 1e10
        assert link.loss_rate(1e6) == 0.0


class TestRtt:
    """The paper's Eq. (1)."""

    def test_below_capacity_gives_base_rtt(self, emulab_link):
        assert emulab_link.rtt(0.0) == pytest.approx(emulab_link.base_rtt)
        assert emulab_link.rtt(69.9) == pytest.approx(emulab_link.base_rtt)

    def test_exact_capacity_gives_base_rtt(self, emulab_link):
        assert emulab_link.rtt(70.0) == pytest.approx(emulab_link.base_rtt)

    def test_queueing_delay_grows_linearly(self, emulab_link):
        # X = C + q queues q MSS, adding q / B seconds.
        q = 50.0
        expected = emulab_link.base_rtt + q / emulab_link.bandwidth
        assert emulab_link.rtt(70.0 + q) == pytest.approx(expected)

    def test_at_pipe_limit_returns_timeout(self, emulab_link):
        # X = C + tau is the boundary: Eq. (1) switches to Delta.
        assert emulab_link.rtt(emulab_link.pipe_limit) == pytest.approx(
            emulab_link.timeout_rtt
        )

    def test_beyond_pipe_limit_returns_timeout(self, emulab_link):
        assert emulab_link.rtt(1e6) == pytest.approx(emulab_link.timeout_rtt)

    def test_negative_window_rejected(self, emulab_link):
        with pytest.raises(ValueError):
            emulab_link.rtt(-1.0)


class TestLoss:
    def test_no_loss_within_pipe(self, emulab_link):
        assert emulab_link.loss_rate(0.0) == 0.0
        assert emulab_link.loss_rate(170.0) == 0.0

    def test_loss_is_excess_fraction(self, emulab_link):
        # X = 2 * (C + tau) drops half the traffic.
        assert emulab_link.loss_rate(340.0) == pytest.approx(0.5)

    def test_loss_monotone_in_window(self, emulab_link):
        losses = [emulab_link.loss_rate(x) for x in (171, 200, 300, 1000)]
        assert losses == sorted(losses)
        assert all(0 < loss < 1 for loss in losses)

    def test_loss_never_reaches_one(self, emulab_link):
        assert emulab_link.loss_rate(1e12) < 1.0

    def test_negative_window_rejected(self, emulab_link):
        with pytest.raises(ValueError):
            emulab_link.loss_rate(-0.1)


class TestQueueOccupancy:
    def test_empty_below_capacity(self, emulab_link):
        assert emulab_link.queue_occupancy(50.0) == 0.0

    def test_partial(self, emulab_link):
        assert emulab_link.queue_occupancy(120.0) == pytest.approx(50.0)

    def test_clamped_at_buffer(self, emulab_link):
        assert emulab_link.queue_occupancy(1e6) == pytest.approx(100.0)


class TestMisc:
    def test_with_bandwidth_changes_capacity(self, emulab_link):
        doubled = emulab_link.with_bandwidth(2 * emulab_link.bandwidth)
        assert doubled.capacity == pytest.approx(2 * emulab_link.capacity)
        assert doubled.buffer_size == emulab_link.buffer_size

    def test_describe_mentions_parameters(self, emulab_link):
        text = emulab_link.describe()
        assert "20.0 Mbps" in text
        assert "42.0 ms" in text

    def test_frozen(self, emulab_link):
        with pytest.raises(Exception):
            emulab_link.bandwidth = 1.0

    def test_full_buffer_rtt(self, emulab_link):
        expected = emulab_link.base_rtt + 100 / emulab_link.bandwidth
        assert emulab_link.full_buffer_rtt() == pytest.approx(expected)

    def test_describe_infinite(self):
        assert "infinite" in Link.infinite().describe()

    def test_timeout_is_finite(self, emulab_link):
        assert math.isfinite(emulab_link.timeout_rtt)
