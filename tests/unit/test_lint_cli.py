"""CLI-level tests for ``repro lint``: formats, exit codes, and the
clean-tree snapshot the CI job relies on."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.cli import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def _bad_tree(tmp_path: Path) -> Path:
    path = tmp_path / "repro" / "analysis" / "jitter.py"
    path.parent.mkdir(parents=True)
    path.write_text("import random\nx = random.random()\n")
    return tmp_path


def test_repo_src_is_clean_json_snapshot(capsys):
    """`repro lint src --format json` on the real tree: zero findings.

    This is the same invocation CI runs; if a rule regresses or a
    violation lands in src/, this snapshot is the local tripwire.
    """
    code = main([str(REPO_SRC), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["version"] == 1
    assert payload["findings"] == []
    assert payload["files_checked"] > 50
    assert payload["suppressed"] >= 3  # the documented exact-float noqas


def test_violation_yields_exit_1_and_json_finding(tmp_path, capsys):
    code = main([str(_bad_tree(tmp_path)), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    [finding] = payload["findings"]
    assert finding["code"] == "REP101"
    assert finding["line"] == 2
    assert finding["severity"] == "error"
    assert finding["path"].endswith("jitter.py")


def test_human_format_mentions_code_and_location(tmp_path, capsys):
    code = main([str(_bad_tree(tmp_path))])
    out = capsys.readouterr().out
    assert code == 1
    assert "REP101" in out
    assert "jitter.py:2" in out


def test_github_format_emits_workflow_commands(tmp_path, capsys):
    code = main([str(_bad_tree(tmp_path)), "--format", "github"])
    out = capsys.readouterr().out
    assert code == 1
    assert out.startswith("::error ")
    assert "file=" in out and "line=2" in out and "title=REP101" in out


def test_select_ignore_and_unknown_code(tmp_path, capsys):
    tree = _bad_tree(tmp_path)
    assert main([str(tree), "--select", "REP501"]) == 0
    capsys.readouterr()
    assert main([str(tree), "--ignore", "REP101,REP501"]) == 0
    capsys.readouterr()
    code = main([str(tree), "--select", "NOPE1"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown rule code" in err


def test_missing_path_is_a_usage_error(tmp_path, capsys):
    code = main([str(tmp_path / "nowhere")])
    assert code == 2
    assert "repro lint:" in capsys.readouterr().err


def test_list_rules_prints_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for expected in ("REP101", "REP202", "REP302", "REP501"):
        assert expected in out


def test_top_level_cli_routes_lint(capsys):
    from repro.cli import main as repro_main

    code = repro_main(["lint", str(REPO_SRC / "repro" / "lint")])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 findings" in out
