"""CLI-level tests for ``repro lint``: formats, exit codes, and the
clean-tree snapshot the CI job relies on."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.cli import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def _bad_tree(tmp_path: Path) -> Path:
    path = tmp_path / "repro" / "analysis" / "jitter.py"
    path.parent.mkdir(parents=True)
    path.write_text("import random\nx = random.random()\n")
    return tmp_path


def test_repo_src_is_clean_json_snapshot(capsys):
    """`repro lint src --format json` on the real tree: zero findings.

    This is the same invocation CI runs; if a rule regresses or a
    violation lands in src/, this snapshot is the local tripwire.
    """
    code = main([str(REPO_SRC), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["version"] == 1
    assert payload["findings"] == []
    assert payload["files_checked"] > 50
    assert payload["suppressed"] >= 3  # the documented exact-float noqas


def test_violation_yields_exit_1_and_json_finding(tmp_path, capsys):
    code = main([str(_bad_tree(tmp_path)), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    [finding] = payload["findings"]
    assert finding["code"] == "REP101"
    assert finding["line"] == 2
    assert finding["severity"] == "error"
    assert finding["path"].endswith("jitter.py")


def test_human_format_mentions_code_and_location(tmp_path, capsys):
    code = main([str(_bad_tree(tmp_path))])
    out = capsys.readouterr().out
    assert code == 1
    assert "REP101" in out
    assert "jitter.py:2" in out


def test_github_format_emits_workflow_commands(tmp_path, capsys):
    code = main([str(_bad_tree(tmp_path)), "--format", "github"])
    out = capsys.readouterr().out
    assert code == 1
    assert out.startswith("::error ")
    assert "file=" in out and "line=2" in out and "title=REP101" in out


def test_select_ignore_and_unknown_code(tmp_path, capsys):
    tree = _bad_tree(tmp_path)
    assert main([str(tree), "--select", "REP501"]) == 0
    capsys.readouterr()
    assert main([str(tree), "--ignore", "REP101,REP501"]) == 0
    capsys.readouterr()
    code = main([str(tree), "--select", "NOPE1"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown rule code" in err


def test_missing_path_is_a_usage_error(tmp_path, capsys):
    code = main([str(tmp_path / "nowhere")])
    assert code == 2
    assert "repro lint:" in capsys.readouterr().err


def test_list_rules_prints_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for expected in ("REP101", "REP202", "REP302", "REP501"):
        assert expected in out


def test_top_level_cli_routes_lint(capsys):
    from repro.cli import main as repro_main

    code = repro_main(["lint", str(REPO_SRC / "repro" / "lint")])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 findings" in out


def test_repo_src_is_clean_under_full_profile(capsys):
    """The acceptance gate: `repro lint --profile full` exits 0 on src."""
    code = main([str(REPO_SRC), "--profile", "full"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 findings" in out


def test_profile_fast_skips_dataflow_rules(tmp_path, capsys):
    # A REP701 violation is invisible to the fast profile.
    path = tmp_path / "repro" / "backends" / "worker.py"
    path.parent.mkdir(parents=True)
    path.write_text(
        "import numpy as np\n"
        "from multiprocessing import shared_memory\n\n"
        "def worker(name, steps, rows, lo, hi):\n"
        "    shm = shared_memory.SharedMemory(name=name)\n"
        "    full = np.ndarray((steps, rows), dtype=np.float64,\n"
        "                      buffer=shm.buf)\n"
        "    full[:, lo - 1:hi] = 1.0\n"
        "    shm.close()\n"
    )
    assert main([str(tmp_path), "--profile", "fast"]) == 0
    capsys.readouterr()
    assert main([str(tmp_path), "--profile", "full"]) == 1
    assert "REP701" in capsys.readouterr().out


def test_stats_prints_per_rule_table_to_stderr(tmp_path, capsys):
    code = main([str(_bad_tree(tmp_path)), "--stats", "--format", "json"])
    captured = capsys.readouterr()
    assert code == 1
    json.loads(captured.out)  # stdout stays machine-parseable
    assert "REP101" in captured.err
    assert "total" in captured.err


def test_write_baseline_then_baseline_gates_only_new_findings(tmp_path, capsys):
    tree = _bad_tree(tmp_path)
    baseline = tmp_path / "lint-baseline.json"
    assert main([str(tree), "--write-baseline", str(baseline)]) == 0
    err = capsys.readouterr().err
    assert "recorded 1 baseline entry" in err

    # Recorded finding: gated out, exit 0.
    assert main([str(tree), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out

    # A new violation still fails.
    extra = tmp_path / "repro" / "experiments" / "driver.py"
    extra.parent.mkdir(parents=True)
    extra.write_text("def run(grid=[]):\n    return grid\n")
    assert main([str(tree), "--baseline", str(baseline)]) == 1
    assert "REP402" in capsys.readouterr().out


def test_stale_baseline_entries_warn_on_stderr(tmp_path, capsys):
    tree = _bad_tree(tmp_path)
    baseline = tmp_path / "lint-baseline.json"
    assert main([str(tree), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    (tree / "repro" / "analysis" / "jitter.py").write_text(
        "import numpy as np\nrng = np.random.default_rng(3)\n"
    )
    assert main([str(tree), "--baseline", str(baseline)]) == 0
    assert "stale baseline entry" in capsys.readouterr().err


def test_missing_baseline_is_a_usage_error(tmp_path, capsys):
    code = main([str(_bad_tree(tmp_path)), "--baseline",
                 str(tmp_path / "nope.json")])
    assert code == 2
    assert "repro lint:" in capsys.readouterr().err


def test_baseline_flags_are_mutually_exclusive(tmp_path, capsys):
    code = main([str(tmp_path), "--baseline", "a", "--write-baseline", "b"])
    assert code == 2
    assert "mutually exclusive" in capsys.readouterr().err
