"""The per-function dataflow framework (repro.lint.dataflow)."""

from __future__ import annotations

import ast

import pytest

from repro.lint.dataflow import (
    PARAM_DEF,
    AliasFact,
    analyze_function,
    build_cfg,
    summaries,
)


def _func(source: str):
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    raise AssertionError("no function in source")


def test_cfg_straight_line_is_one_block():
    cfg = build_cfg(_func("def f(x):\n    y = x + 1\n    return y\n"))
    assert len(cfg.blocks) >= 1
    assert cfg.entry.index == 0
    assert len(cfg.entry.stmts) == 2


def test_cfg_branch_creates_successors():
    cfg = build_cfg(_func(
        "def f(x):\n"
        "    if x > 0:\n"
        "        y = 1\n"
        "    else:\n"
        "        y = 2\n"
        "    return y\n"
    ))
    assert len(cfg.entry.succs) == 2
    # Both arms re-merge: some block has two predecessors.
    assert any(len(cfg.preds(b.index)) == 2 for b in cfg.blocks)


def test_cfg_loop_back_edge():
    cfg = build_cfg(_func(
        "def f(n):\n"
        "    total = 0\n"
        "    for i in range(n):\n"
        "        total = total + i\n"
        "    return total\n"
    ))
    # A loop produces at least one back edge: a successor with a lower
    # (or equal) index than its source.
    assert any(
        succ <= block.index for block in cfg.blocks for succ in block.succs
    )


def test_reaching_definitions_see_the_parameter():
    summary = analyze_function(_func(
        "def f(x):\n"
        "    if x > 0:\n"
        "        y = 1\n"
        "    else:\n"
        "        y = 2\n"
        "    return y\n"
    ))
    assert summary.reaching_in(0).get("x") == frozenset({PARAM_DEF})
    # At the merge block, both definitions of y reach.
    merge = [
        b.index for b in summary.cfg.blocks
        if len(summary.cfg.preds(b.index)) == 2
    ]
    assert merge
    reaching_y = summary.reaching_in(merge[0]).get("y", frozenset())
    assert len(reaching_y) == 2


def test_single_def_and_constants():
    summary = analyze_function(_func(
        "def f(x):\n"
        "    scale = 2.0\n"
        "    y = x * scale\n"
        "    y = y + 1\n"
        "    return y\n"
    ))
    assert summary.constants == {"scale": 2.0}
    assert isinstance(summary.single_def("scale"), ast.Constant)
    assert summary.single_def("y") is None  # two bindings
    assert summary.single_def("x") is None  # parameter


def test_pristine_and_mutated_params():
    summary = analyze_function(_func(
        "def f(lo, hi, out, arr):\n"
        "    out[lo:hi] = 1.0\n"
        "    lo = lo + 1\n"
        "    return arr\n"
    ))
    assert summary.is_pristine("hi")
    assert summary.is_pristine("arr")
    assert not summary.is_pristine("lo")  # rebound
    assert summary.mutated_params == {"out"}
    assert not summary.is_pure


def test_purity_inference():
    pure = analyze_function(_func(
        "def f(x):\n    return abs(x) + 1\n"
    ))
    assert pure.is_pure
    impure = analyze_function(_func(
        "def f(path, x):\n    print(x)\n    return x\n"
    ))
    assert not impure.is_pure


def test_shm_alias_facts():
    summary = analyze_function(_func(
        "def worker(name, steps, rows):\n"
        "    shm = shared_memory.SharedMemory(name=name)\n"
        "    full = np.ndarray((steps, rows), dtype=np.float64, buffer=shm.buf)\n"
        "    scratch = np.zeros(rows)\n"
        "    return full, scratch\n"
    ))
    assert summary.aliases["shm"].kind == "shm-attached"
    assert summary.aliases["full"] == AliasFact(kind="shm-array", base="shm")
    assert summary.aliases.get("scratch", AliasFact(kind="other")).kind != "shm-array"


def test_shm_owner_is_not_attached():
    summary = analyze_function(_func(
        "def parent(size):\n"
        "    seg = shared_memory.SharedMemory(create=True, size=size)\n"
        "    return seg\n"
    ))
    assert summary.aliases["seg"].kind == "shm-owned"


def test_summaries_memoizes_on_the_context_cache():
    func = _func("def f(x):\n    return x\n")

    class Ctx:
        cache: dict = {}

    ctx = Ctx()
    first = summaries(ctx, func)
    second = summaries(ctx, func)
    assert first is second
    # Without a cache attribute the analysis still works.
    assert summaries(object(), func).params == ("x",)


@pytest.mark.parametrize("body", [
    "while x > 0:\n        x = x - 1\n",
    "try:\n        y = 1\n    except ValueError:\n        y = 2\n",
    "with open('f') as fh:\n        y = fh\n",
])
def test_analysis_handles_structured_statements(body):
    summary = analyze_function(_func(f"def f(x):\n    {body}    return x\n"))
    assert summary.params == ("x",)
