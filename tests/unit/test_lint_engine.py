"""Engine edge cases: profiles, crash isolation, noqa spans, baselines."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import REGISTRY, run_lint
from repro.lint.baseline import apply_baseline, fingerprint, write_baseline
from repro.lint.engine import _noqa_map, select_rules
from repro.lint.findings import Severity
from repro.lint.rules import Rule

#: The rule families that predate the dataflow layer — the fast profile.
_FAST_CODES = {
    "REP101", "REP102", "REP103", "REP201", "REP202", "REP301", "REP302",
    "REP303", "REP401", "REP402", "REP403", "REP404", "REP501",
}
_FULL_ONLY_CODES = {"REP601", "REP602", "REP603", "REP701", "REP702"}


def _write(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return root


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------
def test_fast_profile_is_exactly_the_pattern_rules():
    assert {r.code for r in select_rules(profile="fast")} == _FAST_CODES
    assert {r.code for r in select_rules(profile="full")} == (
        _FAST_CODES | _FULL_ONLY_CODES
    )


def test_unknown_profile_is_a_usage_error():
    with pytest.raises(ValueError, match="unknown profile"):
        select_rules(profile="exhaustive")


def test_explicit_select_overrides_the_profile():
    # --select REP701 under the fast profile still runs REP701.
    chosen = select_rules(select=["REP701"], profile="fast")
    assert [r.code for r in chosen] == ["REP701"]


# ----------------------------------------------------------------------
# Degenerate files
# ----------------------------------------------------------------------
def test_empty_file_is_clean(tmp_path):
    root = _write(tmp_path, "repro/empty.py", "")
    result = run_lint([root])
    assert result.ok
    assert result.files_checked == 1


def test_comments_only_file_is_clean(tmp_path):
    root = _write(
        tmp_path, "repro/notes.py", "# just a comment\n# and another\n"
    )
    assert run_lint([root]).ok


def test_invalid_file_yields_rep000_and_others_still_lint(tmp_path):
    root = _write(tmp_path, "repro/broken.py", "def oops(:\n")
    _write(tmp_path, "repro/analysis/dicey.py",
           "import random\nx = random.random()\n")
    result = run_lint([root])
    codes = [f.code for f in result.all_findings()]
    assert "REP000" in codes
    assert "REP101" in codes
    assert result.files_checked == 2


# ----------------------------------------------------------------------
# Rule crash isolation (REP999)
# ----------------------------------------------------------------------
def _install_crashing_rule(code: str, project: bool) -> None:
    def crash(*args):
        raise RuntimeError("kaboom")
        yield  # pragma: no cover - makes the checker a generator

    REGISTRY[code] = Rule(
        code=code,
        name="crash-fixture",
        severity=Severity.ERROR,
        description="test fixture",
        checker=crash,
        project=project,
    )


@pytest.mark.parametrize("project", [False, True], ids=["file", "project"])
def test_crashing_rule_becomes_rep999_not_abort(tmp_path, project):
    code = "REP998"
    _install_crashing_rule(code, project)
    try:
        root = _write(tmp_path, "repro/analysis/dicey.py",
                      "import random\nx = random.random()\n")
        result = run_lint([root])
    finally:
        del REGISTRY[code]
    codes = [f.code for f in result.findings]
    # The crash surfaces as REP999 and the healthy rules still report.
    assert "REP999" in codes
    assert "REP101" in codes
    crash_findings = [f for f in result.findings if f.code == "REP999"]
    assert "REP998" in crash_findings[0].message
    assert "kaboom" in crash_findings[0].message


def test_rep999_is_not_a_selectable_rule(tmp_path):
    root = _write(tmp_path, "repro/fine.py", "x = 1\n")
    with pytest.raises(ValueError, match="unknown rule code"):
        run_lint([root], select=["REP999"])


def test_rep999_is_not_noqa_suppressible(tmp_path):
    code = "REP997"
    _install_crashing_rule(code, project=False)
    try:
        root = _write(tmp_path, "repro/fine.py", "x = 1  # repro: noqa\n")
        result = run_lint([root])
    finally:
        del REGISTRY[code]
    assert [f.code for f in result.findings] == ["REP999"]


# ----------------------------------------------------------------------
# noqa decorator spans
# ----------------------------------------------------------------------
def test_noqa_on_def_line_covers_decorator_lines():
    source = (
        "@decorate\n"
        "@again\n"
        "def f():  # repro: noqa[REP101]\n"
        "    return 1\n"
    )
    import ast

    spans = _noqa_map(source, ast.parse(source))
    assert spans[1] == frozenset({"REP101"})
    assert spans[2] == frozenset({"REP101"})
    assert spans[3] == frozenset({"REP101"})


def test_noqa_spans_merge_and_all_rules_dominates():
    source = (
        "@decorate  # repro: noqa[REP102]\n"
        "def f():  # repro: noqa\n"
        "    return 1\n"
    )
    import ast

    spans = _noqa_map(source, ast.parse(source))
    assert spans[1] is None and spans[2] is None


def test_noqa_without_tree_stays_per_line():
    source = "@decorate\ndef f():  # repro: noqa\n    return 1\n"
    spans = _noqa_map(source)
    assert 1 not in spans
    assert spans[2] is None


def test_decorated_function_finding_suppressed_from_def_line(tmp_path):
    # REP402 anchors at the function definition; a bad fixture whose def
    # carries the noqa must stay suppressed even with decorators above.
    root = _write(
        tmp_path, "repro/experiments/driver.py",
        "import functools\n\n"
        "@functools.lru_cache\n"
        "def run(grid=[]):  # repro: noqa[REP402]\n"
        "    return grid\n",
    )
    result = run_lint([root])
    assert result.findings == []
    assert result.suppressed == 1


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def _dirty_tree(tmp_path: Path) -> Path:
    return _write(tmp_path, "repro/analysis/dicey.py",
                  "import random\nx = random.random()\n")


def test_baseline_round_trip(tmp_path):
    root = _dirty_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    result = run_lint([root])
    assert result.findings
    write_baseline(result, baseline)

    # Same findings: everything absorbed, nothing stale.
    fresh = run_lint([root])
    stale = apply_baseline(fresh, baseline)
    assert fresh.findings == []
    assert fresh.baselined > 0
    assert stale == []


def test_baseline_fails_only_on_new_findings(tmp_path):
    root = _dirty_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    write_baseline(run_lint([root]), baseline)

    _write(tmp_path, "repro/experiments/driver.py",
           "def run(grid=[]):\n    return grid\n")
    result = run_lint([root])
    apply_baseline(result, baseline)
    assert [f.code for f in result.findings] == ["REP402"]


def test_baseline_staleness_is_reported(tmp_path):
    root = _dirty_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    recorded = run_lint([root])
    write_baseline(recorded, baseline)

    # The debt is paid: the recorded finding disappears.
    (root / "repro/analysis/dicey.py").write_text(
        "import numpy as np\nrng = np.random.default_rng(1)\n"
    )
    fresh = run_lint([root])
    stale = apply_baseline(fresh, baseline)
    assert fresh.findings == []
    assert stale == sorted(fingerprint(f) for f in recorded.findings)


def test_missing_and_malformed_baselines_raise(tmp_path):
    root = _dirty_tree(tmp_path)
    with pytest.raises(FileNotFoundError):
        apply_baseline(run_lint([root]), tmp_path / "nope.json")
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    with pytest.raises(ValueError, match="malformed baseline"):
        apply_baseline(run_lint([root]), bad)
    bad.write_text('{"version": 99}')
    with pytest.raises(ValueError, match="malformed baseline"):
        apply_baseline(run_lint([root]), bad)


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
def test_rule_stats_cover_every_active_rule(tmp_path):
    root = _dirty_tree(tmp_path)
    result = run_lint([root])
    assert set(result.rule_stats) == _FAST_CODES | _FULL_ONLY_CODES
    assert result.rule_stats["REP101"].findings == 1
    assert all(s.seconds >= 0.0 for s in result.rule_stats.values())


def test_rule_timings_mirror_into_the_perf_registry(tmp_path):
    from repro.perf.timing import REGISTRY as TIMING

    TIMING.reset()
    try:
        run_lint([_dirty_tree(tmp_path)])
        assert TIMING.total("lint.REP101") > 0.0
    finally:
        TIMING.reset()
