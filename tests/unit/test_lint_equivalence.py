"""The REP6xx drift detector against the *real* protocol sources.

The fixture-tree cases in ``test_lint_rules.py`` prove each rule fires
in isolation; these tests prove the acceptance-level property — seeding
a one-constant drift into copies of the actual shipped sources is caught
and localized, and the unmutated sources stay clean.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.equivalence import (
    Bin,
    Const,
    Sym,
    Var,
    Where,
    diff,
    normalize,
    render,
)

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

_PROTOCOL_FILES = ("base.py", "aimd.py", "mimd.py", "robust_aimd.py")


def _real_tree(
    tmp_path: Path, with_kernels: bool = False, with_meanfield: bool = False
) -> Path:
    """Copy the real protocol (and optionally kernel) sources into a
    miniature ``repro/`` tree."""
    root = tmp_path / "tree"
    protocols = root / "repro" / "protocols"
    protocols.mkdir(parents=True)
    for name in _PROTOCOL_FILES:
        shutil.copy(SRC / "protocols" / name, protocols / name)
    if with_kernels:
        model = root / "repro" / "model"
        model.mkdir(parents=True)
        shutil.copy(SRC / "model" / "kernels.py", model / "kernels.py")
    if with_meanfield:
        meanfield = root / "repro" / "meanfield"
        meanfield.mkdir(parents=True)
        shutil.copy(SRC / "meanfield" / "kernel.py", meanfield / "kernel.py")
    return root


def test_real_protocols_are_drift_free(tmp_path):
    root = _real_tree(tmp_path, with_kernels=True, with_meanfield=True)
    assert run_lint([root]).findings == []


def test_seeded_constant_drift_in_batched_next_is_caught(tmp_path):
    root = _real_tree(tmp_path)
    target = root / "repro" / "protocols" / "aimd.py"
    source = target.read_text()
    mutated = source.replace(
        "loss_rate > 0.0, windows", "loss_rate > 0.001, windows"
    )
    assert mutated != source, "seed site moved; update the test"
    target.write_text(mutated)

    findings = [f for f in run_lint([root]).findings if f.code == "REP601"]
    assert findings, "seeded drift was not detected"
    drift = " | ".join(f.message for f in findings)
    # Names both implementations and the diverging subexpression.
    assert "batched_next" in drift
    assert "next_window" in drift
    assert "0.001" in drift and "0.0" in drift
    assert any(f.path == str(target) for f in findings)


def test_seeded_arm_drift_is_localized_to_the_arm(tmp_path):
    # Drift an *arm* (growth uses b instead of a): the diff names the
    # minimal subexpression, not the whole where().
    root = _real_tree(tmp_path)
    target = root / "repro" / "protocols" / "aimd.py"
    source = target.read_text()
    mutated = source.replace('windows + params["a"]', 'windows + params["b"]')
    assert mutated != source
    target.write_text(mutated)
    findings = [f for f in run_lint([root]).findings if f.code == "REP601"]
    assert findings
    assert any("'b'" in f.message or " b " in f.message or "(a + w)" in f.message
               for f in findings)


def test_seeded_jit_kernel_drift_is_caught(tmp_path):
    root = _real_tree(tmp_path, with_kernels=True)
    target = root / "repro" / "model" / "kernels.py"
    source = target.read_text()
    # First kid-0 decrease arm: w * p1 -> w * p0.
    mutated = source.replace("nxt = w * p1", "nxt = w * p0", 1)
    assert mutated != source
    target.write_text(mutated)
    findings = [f for f in run_lint([root]).findings if f.code == "REP601"]
    assert findings
    drift = " | ".join(f.message for f in findings)
    assert "compiled kernel" in drift
    assert "batched_next" in drift
    assert any(f.path == str(target) for f in findings)


def test_seeded_net_kernel_drift_is_caught(tmp_path):
    # Drift only the *network* transliteration's MIMD growth arm; the
    # fluid chain earlier in the file stays pristine, so the finding
    # must come from the network comparison.
    root = _real_tree(tmp_path, with_kernels=True)
    target = root / "repro" / "model" / "kernels.py"
    head, sep, tail = target.read_text().partition("def _advance_net_cells")
    assert sep, "net transliteration moved; update the test"
    mutated_tail = tail.replace("nxt = w * p0", "nxt = w * p1", 1)
    assert mutated_tail != tail
    target.write_text(head + sep + mutated_tail)
    findings = [f for f in run_lint([root]).findings if f.code == "REP601"]
    assert findings
    drift = " | ".join(f.message for f in findings)
    assert "compiled network kernel" in drift
    assert "batched_next" in drift
    assert any(f.path == str(target) for f in findings)


def test_seeded_net_branch_inextractable_is_unverifiable(tmp_path):
    # An arm of the network chain outside the extraction grammar is a
    # REP602 coverage hole, not silence.
    root = _real_tree(tmp_path, with_kernels=True)
    target = root / "repro" / "model" / "kernels.py"
    head, sep, tail = target.read_text().partition("def _advance_net_cells")
    assert sep
    mutated_tail = tail.replace("nxt = w * p0", "nxt = mystery(w)", 1)
    assert mutated_tail != tail
    target.write_text(head + sep + mutated_tail)
    findings = [f for f in run_lint([root]).findings if f.code == "REP602"]
    assert any("compiled network branch" in f.message for f in findings)


def test_seeded_deposit_drift_is_caught(tmp_path):
    root = _real_tree(tmp_path, with_kernels=True, with_meanfield=True)
    target = root / "repro" / "model" / "kernels.py"
    source = target.read_text()
    mutated = source.replace("lower = m - upper", "lower = m - upper * 2.0")
    assert mutated != source, "seed site moved; update the test"
    target.write_text(mutated)
    findings = [f for f in run_lint([root]).findings if f.code == "REP601"]
    assert findings
    drift = " | ".join(f.message for f in findings)
    assert "_deposit_cells" in drift
    assert "meanfield_deposit" in drift
    assert "2.0" in drift
    assert any(f.path == str(target) for f in findings)


def test_inextractable_deposit_is_unverifiable(tmp_path):
    root = _real_tree(tmp_path, with_kernels=True, with_meanfield=True)
    target = root / "repro" / "model" / "kernels.py"
    source = target.read_text()
    mutated = source.replace("upper = m * weight_hi[k]", "upper = blend(m, k)")
    assert mutated != source
    target.write_text(mutated)
    findings = [f for f in run_lint([root]).findings if f.code == "REP602"]
    assert any(
        "_deposit_cells" in f.message and "deposit drift" in f.message
        for f in findings
    )


def test_missing_symbolic_roles_hint_is_unverifiable(tmp_path):
    root = _real_tree(tmp_path, with_kernels=True)
    target = root / "repro" / "model" / "kernels.py"
    source = target.read_text()
    start = source.index("_SYMBOLIC_ROLES = {")
    end = source.index("}", start) + 2
    target.write_text(source[:start] + source[end:])
    findings = [f for f in run_lint([root]).findings if f.code == "REP602"]
    assert findings
    assert "_SYMBOLIC_ROLES" in findings[0].message


def test_seeded_trigger_drift_is_caught(tmp_path):
    root = _real_tree(tmp_path)
    target = root / "repro" / "protocols" / "robust_aimd.py"
    source = target.read_text()
    mutated = source.replace('("ge", "epsilon")', '("gt", "epsilon")')
    assert mutated != source
    target.write_text(mutated)
    findings = [f for f in run_lint([root]).findings if f.code == "REP601"]
    assert findings
    assert "meanfield_trigger" in findings[0].message


# ----------------------------------------------------------------------
# The symbolic core
# ----------------------------------------------------------------------
def test_normalize_sorts_commutative_operands_only():
    a = Bin("*", Var("w"), Var("b"))
    b = Bin("*", Var("b"), Var("w"))
    assert normalize(a) == normalize(b)
    # Subtraction is not commutative: operand order is preserved.
    c = Bin("-", Var("w"), Var("b"))
    d = Bin("-", Var("b"), Var("w"))
    assert normalize(c) != normalize(d)
    # No reassociation: (w + a) + b stays distinct from w + (a + b),
    # because float addition is not associative.
    left = Bin("+", Bin("+", Var("w"), Var("a")), Var("b"))
    right = Bin("+", Var("w"), Bin("+", Var("a"), Var("b")))
    assert normalize(left) != normalize(right)


def test_diff_localizes_single_divergence():
    mk = lambda c: Where(  # noqa: E731
        Bin("+", Var("w"), Const(c)), Var("w"), Const(0.0)
    )
    pair = diff(mk(1.0), mk(2.0))
    assert pair == (Const(1.0), Const(2.0))
    # Two divergences: the smallest common ancestor is reported.
    both_a = Bin("+", Const(1.0), Const(2.0))
    both_b = Bin("+", Const(3.0), Const(4.0))
    pair = diff(both_a, both_b)
    assert pair == (both_a, both_b)
    assert diff(mk(1.0), mk(1.0)) is None


def test_render_is_deterministic_and_total():
    sym: Sym = Where(
        Bin("+", Var("w"), Const(0.5)),
        Bin("*", Var("w"), Var("b")),
        Const(1.0),
    )
    assert render(sym) == "where((w + 0.5), (w * b), 1.0)"


def test_inextractable_protocols_are_skipped_not_flagged(tmp_path):
    # Stateful scalar + no advertised coverage: extraction fails quietly.
    root = tmp_path / "tree"
    (root / "repro" / "protocols").mkdir(parents=True)
    (root / "repro" / "protocols" / "stateful.py").write_text(
        "from repro.protocols.base import Protocol\n\n"
        "class Cubicish(Protocol):\n"
        "    def next_window(self, obs):\n"
        "        self.t = getattr(self, 't', 0) + 1\n"
        "        return obs.window + self.t\n"
    )
    assert run_lint([root]).findings == []


def test_profile_fast_skips_the_drift_rules(tmp_path):
    root = _real_tree(tmp_path)
    target = root / "repro" / "protocols" / "aimd.py"
    target.write_text(
        target.read_text().replace(
            "loss_rate > 0.0, windows", "loss_rate > 0.001, windows"
        )
    )
    assert run_lint([root], profile="fast").findings == []
    assert any(
        f.code == "REP601" for f in run_lint([root], profile="full").findings
    )
