"""Per-rule coverage for ``repro lint``: hit, clean pass, noqa suppression.

Each case writes a miniature ``repro/...`` tree into ``tmp_path`` (rule
scopes match on the package-relative path, so the directory layout is
part of the fixture) and runs the real engine over it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import REGISTRY, run_lint

# (rule code, module-relative path, violating source, clean source)
CASES = [
    (
        "REP101",
        "repro/analysis/noise.py",
        "import random\nx = random.random()\n",
        "import numpy as np\nrng = np.random.default_rng(42)\nx = rng.random()\n",
    ),
    (
        "REP101",
        "repro/analysis/entropy.py",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "import numpy as np\nrng = np.random.default_rng(7)\n",
    ),
    (
        "REP102",
        "repro/packetsim/clocks.py",
        "import time\nstamp = time.time()\n",
        "def stamp(scheduler):\n    return scheduler.now\n",
    ),
    (
        "REP103",
        "repro/model/membership.py",
        "def drain(items):\n    for x in set(items):\n        yield x\n",
        "def drain(items):\n    for x in sorted(set(items)):\n        yield x\n",
    ),
    (
        "REP201",
        "repro/model/configs.py",
        (
            "from dataclasses import dataclass\n\n"
            "@dataclass\nclass SimulationConfig:\n    seed: int = 0\n\n"
            "    def __post_init__(self):\n        self._hidden = []\n"
        ),
        (
            "from dataclasses import dataclass\n\n"
            "@dataclass\nclass SimulationConfig:\n    seed: int = 0\n"
            "    hidden: tuple = ()\n\n"
            "    def __post_init__(self):\n        self.hidden = ()\n"
        ),
    ),
    (
        "REP301",
        "repro/protocols/custom.py",
        "from repro.protocols.base import Protocol\n\nclass Hollow(Protocol):\n    pass\n",
        (
            "from repro.protocols.base import Protocol\n\n"
            "class Solid(Protocol):\n"
            "    def next_window(self, obs):\n        return obs.window\n"
        ),
    ),
    (
        "REP302",
        "repro/protocols/vector.py",
        (
            "from repro.protocols.base import Protocol\n\n"
            "class Fast(Protocol):\n"
            "    supports_vectorized = True\n"
            "    def next_window(self, obs):\n        return obs.window\n"
            "    def vectorized_next(self, windows, rtt):\n        return windows\n"
        ),
        (
            "from repro.protocols.base import Protocol\n\n"
            "class Fast(Protocol):\n"
            "    supports_vectorized = True\n"
            "    def next_window(self, obs):\n        return obs.window\n"
            "    def vectorized_next(self, windows, loss_rate, rtt):\n"
            "        return windows\n"
        ),
    ),
    (
        "REP303",
        "repro/backends/custom.py",
        (
            "import uuid\n"
            "from repro.backends.base import Backend, register_backend\n\n"
            "class WobblyBackend(Backend):\n"
            "    name = 'wobbly'\n"
            "    def run(self, spec):\n        return None\n"
            "    def cache_key(self, spec):\n        return str(uuid.uuid4())\n\n"
            "register_backend(WobblyBackend())\n"
        ),
        (
            "from repro.backends.base import Backend, register_backend\n\n"
            "class SteadyBackend(Backend):\n"
            "    name = 'steady'\n"
            "    def run(self, spec):\n        return None\n"
            "    def cache_key(self, spec):\n        return 'steady:' + spec\n\n"
            "register_backend(SteadyBackend())\n"
        ),
    ),
    (
        "REP401",
        "repro/packetsim/packet.py",
        "class Record:\n    def __init__(self):\n        self.a = 1\n",
        "class Record:\n    __slots__ = ('a',)\n    def __init__(self):\n        self.a = 1\n",
    ),
    (
        "REP402",
        "repro/experiments/driver.py",
        "def run(grid=[]):\n    return grid\n",
        "def run(grid=None):\n    return grid or []\n",
    ),
    (
        "REP403",
        "repro/model/kernels.py",
        (
            "def batched_next(windows, loss_rate, rtt):\n"
            "    if loss_rate > 0:\n"
            "        return windows * 0.5\n"
            "    return windows + 1.0\n"
        ),
        (
            "import numpy as np\n\n"
            "def batched_next(windows, loss_rate, rtt):\n"
            "    return np.where(loss_rate > 0.0, windows * 0.5, windows + 1.0)\n"
        ),
    ),
    (
        "REP403",
        "repro/model/batch.py",
        (
            "def batched_dispatch(windows, classes):\n"
            "    if classes:\n"
            "        return windows * 0.5\n"
            "    return windows + 1.0\n"
        ),
        # Masked dispatch: branching on a scalar mask reduction picks a
        # dispatch segment for the whole batch on purpose — not flagged.
        (
            "def batched_dispatch(windows, classes):\n"
            "    out = windows + 0.0\n"
            "    for k in range(2):\n"
            "        if (classes == k).any():\n"
            "            out = out + (classes == k)\n"
            "        if (classes == k).sum() == 0:\n"
            "            continue\n"
            "    return out\n"
        ),
    ),
    (
        "REP404",
        "repro/meanfield/kernel.py",
        (
            "def meanfield_deposit(mass, index, cells):\n"
            "    out = [0.0] * cells\n"
            "    for i, m in zip(index, mass):\n"
            "        out[i] += m\n"
            "    return out\n"
        ),
        (
            "import numpy as np\n\n"
            "def meanfield_deposit(mass, index, cells):\n"
            "    return np.bincount(index, weights=mass, minlength=cells)\n"
        ),
    ),
    (
        "REP404",
        "repro/meanfield/moments.py",
        (
            "def meanfield_moment(mass, points):\n"
            "    return sum(m * x for m, x in zip(mass, points))\n"
        ),
        (
            "def meanfield_moment(mass, points):\n"
            "    return float(mass @ points)\n"
        ),
    ),
    (
        "REP501",
        "repro/core/compare.py",
        "def same(a, b):\n    return a == b / 2\n",
        "def same(a, b):\n    return abs(a - b / 2) < 1e-12\n",
    ),
    (
        # The batched rendering branches on loss > 0.001 while the scalar
        # branches on loss > 0.0 — a drifted constant REP601 must localize.
        "REP601",
        "repro/protocols/drift.py",
        (
            "import numpy as np\n"
            "from repro.protocols.base import Protocol\n\n"
            "class Drifty(Protocol):\n"
            "    supports_batched = True\n"
            "    batch_param_names = ('a', 'b')\n\n"
            "    def __init__(self, a=1.0, b=0.5):\n"
            "        self.a = a\n        self.b = b\n\n"
            "    def next_window(self, obs):\n"
            "        if obs.loss_rate > 0.0:\n"
            "            return obs.window * self.b\n"
            "        return obs.window + self.a\n\n"
            "    @staticmethod\n"
            "    def batched_next(windows, loss_rate, rtt, params):\n"
            "        return np.where(loss_rate > 0.001,\n"
            "                        windows * params['b'],\n"
            "                        windows + params['a'])\n"
        ),
        (
            "import numpy as np\n"
            "from repro.protocols.base import Protocol\n\n"
            "class Drifty(Protocol):\n"
            "    supports_batched = True\n"
            "    batch_param_names = ('a', 'b')\n\n"
            "    def __init__(self, a=1.0, b=0.5):\n"
            "        self.a = a\n        self.b = b\n\n"
            "    def next_window(self, obs):\n"
            "        if obs.loss_rate > 0.0:\n"
            "            return obs.window * self.b\n"
            "        return obs.window + self.a\n\n"
            "    @staticmethod\n"
            "    def batched_next(windows, loss_rate, rtt, params):\n"
            "        return np.where(loss_rate > 0.0,\n"
            "                        windows * params['b'],\n"
            "                        windows + params['a'])\n"
        ),
    ),
    (
        # Advertises batched coverage but implements no batched_next.
        "REP602",
        "repro/protocols/ghost.py",
        (
            "from repro.protocols.base import Protocol\n\n"
            "class Ghost(Protocol):\n"
            "    supports_batched = True\n\n"
            "    def next_window(self, obs):\n"
            "        if obs.loss_rate > 0.0:\n"
            "            return obs.window * 0.5\n"
            "        return obs.window + 1.0\n"
        ),
        (
            "import numpy as np\n"
            "from repro.protocols.base import Protocol\n\n"
            "class Ghost(Protocol):\n"
            "    supports_batched = True\n\n"
            "    def next_window(self, obs):\n"
            "        if obs.loss_rate > 0.0:\n"
            "            return obs.window * 0.5\n"
            "        return obs.window + 1.0\n\n"
            "    @staticmethod\n"
            "    def batched_next(windows, loss_rate, rtt, params):\n"
            "        return np.where(loss_rate > 0.0,\n"
            "                        windows * 0.5, windows + 1.0)\n"
        ),
    ),
    (
        # Declares a batch parameter column ('b') the kernel never reads.
        "REP603",
        "repro/protocols/lean.py",
        (
            "from repro.protocols.base import Protocol\n\n"
            "class Lean(Protocol):\n"
            "    supports_batched = True\n"
            "    batch_param_names = ('a', 'b')\n\n"
            "    def __init__(self, a=1.0):\n"
            "        self.a = a\n\n"
            "    def next_window(self, obs):\n"
            "        return obs.window + self.a\n\n"
            "    @staticmethod\n"
            "    def batched_next(windows, loss_rate, rtt, params):\n"
            "        return windows + params['a']\n"
        ),
        (
            "from repro.protocols.base import Protocol\n\n"
            "class Lean(Protocol):\n"
            "    supports_batched = True\n"
            "    batch_param_names = ('a',)\n\n"
            "    def __init__(self, a=1.0):\n"
            "        self.a = a\n\n"
            "    def next_window(self, obs):\n"
            "        return obs.window + self.a\n\n"
            "    @staticmethod\n"
            "    def batched_next(windows, loss_rate, rtt, params):\n"
            "        return windows + params['a']\n"
        ),
    ),
    (
        # The write's lower bound is `lo - 1`: it overlaps the previous
        # worker's chunk, so the slice is not a clean [lo:hi].
        "REP701",
        "repro/backends/worker.py",
        (
            "import numpy as np\n"
            "from multiprocessing import shared_memory\n\n"
            "def worker(shm_name, steps, total_rows, lo, hi):\n"
            "    shm = shared_memory.SharedMemory(name=shm_name)\n"
            "    full = np.ndarray((steps, total_rows), dtype=np.float64,\n"
            "                      buffer=shm.buf)\n"
            "    full[:, lo - 1:hi] = 1.0\n"
            "    shm.close()\n"
        ),
        (
            "import numpy as np\n"
            "from multiprocessing import shared_memory\n\n"
            "def worker(shm_name, steps, total_rows, lo, hi):\n"
            "    shm = shared_memory.SharedMemory(name=shm_name)\n"
            "    full = np.ndarray((steps, total_rows), dtype=np.float64,\n"
            "                      buffer=shm.buf)\n"
            "    full[:, lo:hi] = 1.0\n"
            "    shm.close()\n"
        ),
    ),
    (
        # `full.sum()` reduces over every worker's rows, not just [lo:hi].
        "REP702",
        "repro/backends/collector.py",
        (
            "import numpy as np\n"
            "from multiprocessing import shared_memory\n\n"
            "def collector(shm_name, steps, rows, lo, hi):\n"
            "    shm = shared_memory.SharedMemory(name=shm_name)\n"
            "    full = np.ndarray((steps, rows), dtype=np.float64,\n"
            "                      buffer=shm.buf)\n"
            "    total = float(full.sum())\n"
            "    full[:, lo:hi] = total\n"
            "    shm.close()\n"
        ),
        (
            "import numpy as np\n"
            "from multiprocessing import shared_memory\n\n"
            "def collector(shm_name, steps, rows, lo, hi):\n"
            "    shm = shared_memory.SharedMemory(name=shm_name)\n"
            "    full = np.ndarray((steps, rows), dtype=np.float64,\n"
            "                      buffer=shm.buf)\n"
            "    total = float(full[:, lo:hi].sum())\n"
            "    full[:, lo:hi] = total\n"
            "    shm.close()\n"
        ),
    ),
]


def _write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


@pytest.mark.parametrize("code,rel,bad,clean", CASES,
                         ids=[f"{c[0]}-{Path(c[1]).stem}" for c in CASES])
def test_rule_hit_clean_and_noqa(tmp_path, code, rel, bad, clean):
    bad_root = _write_tree(tmp_path / "bad", {rel: bad})
    hits = run_lint([bad_root]).findings
    assert [f.code for f in hits] == [code], hits

    clean_root = _write_tree(tmp_path / "clean", {rel: clean})
    assert run_lint([clean_root]).findings == []

    # Suppress on the finding's line; the finding must vanish and be counted.
    lines = bad.splitlines()
    lines[hits[0].line - 1] += "  # repro: noqa[%s] test fixture" % code
    noqa_root = _write_tree(tmp_path / "noqa", {rel: "\n".join(lines) + "\n"})
    result = run_lint([noqa_root])
    assert result.findings == []
    assert result.suppressed == 1


def test_rep202_stale_exclusion_and_clean(tmp_path):
    files = {
        "repro/model/dynamics.py": (
            "from dataclasses import dataclass\n\n"
            "@dataclass\nclass SimulationConfig:\n"
            "    seed: int = 0\n    allow_vectorized: bool = True\n"
        ),
        "repro/perf/cache.py": (
            "_EXCLUDED_CONFIG_FIELDS = frozenset({'allow_vectorized', 'ghost'})\n"
        ),
    }
    root = _write_tree(tmp_path / "bad", files)
    findings = run_lint([root]).findings
    assert [f.code for f in findings] == ["REP202"]
    assert "ghost" in findings[0].message

    files["repro/perf/cache.py"] = (
        "_EXCLUDED_CONFIG_FIELDS = frozenset({'allow_vectorized'})\n"
    )
    clean_root = _write_tree(tmp_path / "clean", files)
    assert run_lint([clean_root]).findings == []

    # Bare (code-less) noqa suppresses project-rule findings too.
    files["repro/perf/cache.py"] = (
        "_EXCLUDED_CONFIG_FIELDS = frozenset({'ghost'})  # repro: noqa\n"
    )
    noqa_root = _write_tree(tmp_path / "noqa", files)
    result = run_lint([noqa_root])
    assert result.findings == []
    assert result.suppressed == 1


def test_inherited_protocol_methods_are_accepted(tmp_path):
    # A subclass of a concrete family inherits next_window/vectorized_next.
    root = _write_tree(tmp_path, {
        "repro/protocols/family.py": (
            "from repro.protocols.base import Protocol\n\n"
            "class Base(Protocol):\n"
            "    supports_vectorized = True\n"
            "    def next_window(self, obs):\n        return obs.window\n"
            "    def vectorized_next(self, windows, loss_rate, rtt):\n"
            "        return windows\n\n"
            "class Derived(Base):\n"
            "    def reset(self):\n        return None\n"
        ),
    })
    assert run_lint([root]).findings == []


def test_rep303_unregistered_and_missing_cache_key(tmp_path):
    root = _write_tree(tmp_path / "bad", {
        "repro/backends/ghost.py": (
            "from repro.backends.base import Backend\n\n"
            "class GhostBackend(Backend):\n"
            "    name = 'ghost'\n"
            "    def run(self, spec):\n        return None\n"
        ),
    })
    findings = run_lint([root]).findings
    assert [f.code for f in findings] == ["REP303", "REP303"]
    messages = " | ".join(f.message for f in findings)
    assert "register_backend" in messages
    assert "cache_key" in messages

    # A subclass inheriting both registration-worthy methods from a
    # registered concrete base only needs its own registration call.
    clean_root = _write_tree(tmp_path / "clean", {
        "repro/backends/family.py": (
            "from repro.backends.base import Backend, register_backend\n\n"
            "class BaseBackend(Backend):\n"
            "    name = 'base'\n"
            "    def run(self, spec):\n        return None\n"
            "    def cache_key(self, spec):\n        return 'base'\n\n"
            "class ChildBackend(BaseBackend):\n"
            "    name = 'child'\n\n"
            "register_backend(BaseBackend())\n"
            "register_backend(ChildBackend())\n"
        ),
    })
    assert run_lint([clean_root]).findings == []

    # The scope is repro/backends — identical code elsewhere is not flagged.
    elsewhere = _write_tree(tmp_path / "elsewhere", {
        "repro/experiments/ghost.py": (
            "from repro.backends.base import Backend\n\n"
            "class GhostBackend(Backend):\n"
            "    name = 'ghost'\n"
            "    def run(self, spec):\n        return None\n"
        ),
    })
    assert run_lint([elsewhere]).findings == []


def test_select_and_ignore_filter_rules(tmp_path):
    root = _write_tree(tmp_path, {
        "repro/packetsim/mixed.py": (
            "import random\n"
            "def run(grid=[]):\n    return random.random()\n"
        ),
    })
    every = run_lint([root]).findings
    assert {f.code for f in every} == {"REP101", "REP402"}
    only = run_lint([root], select=["REP101"]).findings
    assert {f.code for f in only} == {"REP101"}
    rest = run_lint([root], ignore=["REP101"]).findings
    assert {f.code for f in rest} == {"REP402"}
    with pytest.raises(ValueError, match="unknown rule code"):
        run_lint([root], select=["REP999"])


def test_parse_error_is_reported_not_fatal(tmp_path):
    root = _write_tree(tmp_path, {"repro/broken.py": "def oops(:\n"})
    result = run_lint([root])
    assert not result.ok
    assert [f.code for f in result.all_findings()] == ["REP000"]


def test_registry_covers_all_contract_families():
    codes = set(REGISTRY)
    assert {"REP101", "REP102", "REP103", "REP201", "REP202",
            "REP301", "REP302", "REP303", "REP401", "REP402", "REP501"} <= codes
    for rule in REGISTRY.values():
        assert rule.code.startswith("REP")
        assert rule.description
