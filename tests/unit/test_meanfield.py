"""Unit coverage for the mean-field backend (repro.meanfield + lowering).

Grid construction, scenario/group validation, every ``lower_meanfield``
rejection branch, group dedup and ``flow_multiplicity`` expansion, the
trace projection (windows are population aggregates; ``total_window()``
recovers the closure aggregate), backend registration, the cache
round-trip, and the metric estimators on a mean-field trace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    LoweringError,
    ScenarioSpec,
    UnifiedTrace,
    backend_names,
    get_backend,
    run_spec,
)
from repro.meanfield.dynamics import (
    MeanFieldGroup,
    MeanFieldScenario,
    MeanFieldSimulator,
)
from repro.meanfield.grid import DEFAULT_CELLS, WindowGrid, default_grid
from repro.model.events import EventSchedule
from repro.model.link import Link
from repro.model.random_loss import GilbertElliottLoss
from repro.netmodel.topology import dumbbell
from repro.protocols.aimd import AIMD
from repro.protocols.cubic import CUBIC
from repro.protocols.mimd import MIMD
from repro.protocols.robust_aimd import RobustAIMD


@pytest.fixture
def link() -> Link:
    return Link.from_mbps(20, 42, 100)


@pytest.fixture
def spec(link) -> ScenarioSpec:
    return ScenarioSpec(protocols=[AIMD(1, 0.5)] * 4, link=link, steps=200)


class TestGrid:
    def test_points_span_the_range(self):
        grid = WindowGrid(lo=1.0, hi=9.0, cells=5)
        assert grid.dx == 2.0
        np.testing.assert_allclose(grid.points(), [1.0, 3.0, 5.0, 7.0, 9.0])

    def test_rejects_degenerate_ranges(self):
        with pytest.raises(ValueError):
            WindowGrid(lo=5.0, hi=5.0, cells=8)
        with pytest.raises(ValueError):
            WindowGrid(lo=0.0, hi=10.0, cells=1)
        with pytest.raises(ValueError):
            WindowGrid(lo=0.0, hi=np.inf, cells=8)

    def test_default_grid_scales_with_per_flow_share(self, link):
        few = default_grid(link, n_flows=2)
        many = default_grid(link, n_flows=200)
        assert few.cells == many.cells == DEFAULT_CELLS
        assert few.hi > many.hi  # per-flow share shrinks with population
        assert many.hi >= 33.0  # never collapses below a usable range

    def test_default_grid_covers_initial_windows(self, link):
        grid = default_grid(link, n_flows=1000, max_initial_window=400.0)
        assert grid.hi >= 800.0


class TestScenarioValidation:
    def test_group_rejects_stateful_protocols(self):
        with pytest.raises(ValueError, match="trigger"):
            MeanFieldGroup(protocol=CUBIC(), population=2)

    def test_group_rejects_empty_population(self):
        with pytest.raises(ValueError, match="population"):
            MeanFieldGroup(protocol=AIMD(1, 0.5), population=0)

    def test_scenario_requires_groups(self, link):
        with pytest.raises(ValueError, match="group"):
            MeanFieldScenario(link=link, groups=[])

    def test_scenario_rejects_bad_loss_rate(self, link):
        with pytest.raises(ValueError, match="random_loss_rate"):
            MeanFieldScenario(
                link=link,
                groups=[MeanFieldGroup(protocol=AIMD(1, 0.5), population=1)],
                random_loss_rate=1.0,
            )

    def test_n_flows_sums_populations(self, link):
        scenario = MeanFieldScenario(
            link=link,
            groups=[
                MeanFieldGroup(protocol=AIMD(1, 0.5), population=3),
                MeanFieldGroup(protocol=MIMD(1.02, 0.6), population=7),
            ],
        )
        assert scenario.n_flows == 10


class TestLowering:
    def test_lowers_to_merged_groups(self, link):
        spec = ScenarioSpec(
            protocols=[AIMD(1, 0.5), MIMD(1.02, 0.6), AIMD(1, 0.5)],
            link=link,
            steps=100,
        )
        scenario = spec.lower_meanfield()
        assert [g.population for g in scenario.groups] == [2, 1]
        assert scenario.synchronized is True
        assert scenario.steps == 100

    def test_distinct_parameters_do_not_merge(self, link):
        spec = ScenarioSpec(
            protocols=[AIMD(1, 0.5), AIMD(1, 0.8)], link=link, steps=10
        )
        assert len(spec.lower_meanfield().groups) == 2

    def test_distinct_initial_windows_do_not_merge(self, link):
        spec = ScenarioSpec(
            protocols=[AIMD(1, 0.5)] * 2,
            link=link,
            steps=10,
            initial_windows=[1.0, 30.0],
        )
        groups = spec.lower_meanfield().groups
        assert sorted(g.initial_window for g in groups) == [1.0, 30.0]

    def test_flow_multiplicity_scales_populations(self, link):
        spec = ScenarioSpec(
            protocols=[AIMD(1, 0.5)] * 2,
            link=link,
            steps=10,
            flow_multiplicity=50_000,
        )
        scenario = spec.lower_meanfield()
        assert spec.n_senders == 100_000
        assert [g.population for g in scenario.groups] == [100_000]

    def test_unsynchronized_loss_selects_the_unsync_closure(self, link):
        spec = ScenarioSpec(
            protocols=[AIMD(1, 0.5)], link=link, steps=10,
            unsynchronized_loss=True,
        )
        assert spec.lower_meanfield().synchronized is False

    def test_rejects_topology(self, link):
        spec = ScenarioSpec(
            protocols=[AIMD(1, 0.5)] * 3, link=link,
            topology=dumbbell(link, link, 3),
        )
        with pytest.raises(LoweringError, match="single-link"):
            spec.lower_meanfield()

    def test_rejects_schedule(self, link):
        spec = ScenarioSpec(
            protocols=[AIMD(1, 0.5)], link=link,
            schedule=EventSchedule().add_sender_start(0, 10, window=1.0),
        )
        with pytest.raises(LoweringError, match="scheduled events"):
            spec.lower_meanfield()

    def test_rejects_staggered_starts(self, link):
        spec = ScenarioSpec(
            protocols=[AIMD(1, 0.5)] * 2, link=link, start_times=[0.0, 5.0]
        )
        with pytest.raises(LoweringError, match="staggered"):
            spec.lower_meanfield()

    def test_accepts_all_zero_start_times(self, link):
        spec = ScenarioSpec(
            protocols=[AIMD(1, 0.5)] * 2, link=link, start_times=[0.0, 0.0]
        )
        assert spec.lower_meanfield().n_flows == 2

    def test_rejects_loss_process(self, link):
        spec = ScenarioSpec(
            protocols=[AIMD(1, 0.5)], link=link,
            loss_process=GilbertElliottLoss(0.1, 0.5, 0.1),
        )
        with pytest.raises(LoweringError, match="random_loss_rate"):
            spec.lower_meanfield()

    def test_rejects_slow_start(self, link):
        spec = ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link,
                            slow_start=True)
        with pytest.raises(LoweringError, match="slow-start"):
            spec.lower_meanfield()

    def test_rejects_integer_windows(self, link):
        spec = ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link,
                            integer_windows=True)
        with pytest.raises(LoweringError, match="density"):
            spec.lower_meanfield()

    def test_rejects_stateful_protocols(self, link):
        spec = ScenarioSpec(protocols=[CUBIC()], link=link)
        with pytest.raises(LoweringError, match="CUBIC"):
            spec.lower_meanfield()


class TestFlowMultiplicity:
    def test_expands_for_flow_level_backends(self, link):
        spec = ScenarioSpec(
            protocols=[AIMD(1, 0.5), MIMD(1.02, 0.6)],
            link=link,
            steps=10,
            flow_multiplicity=3,
            initial_windows=[2.0, 5.0],
        )
        resolved = spec.resolved_protocols()
        assert len(resolved) == 6
        assert [type(p).__name__ for p in resolved] == (
            ["AIMD"] * 3 + ["MIMD"] * 3
        )
        assert spec.resolved_initial_windows() == [2.0] * 3 + [5.0] * 3
        _, protocols, _, _ = spec.lower_fluid()
        assert len(protocols) == 6

    def test_rejects_nonpositive_multiplicity(self, link):
        with pytest.raises(ValueError, match="flow_multiplicity"):
            ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link,
                         flow_multiplicity=0)

    def test_multiplicity_is_exclusive_with_per_flow_features(self, link):
        with pytest.raises(ValueError, match="flow_multiplicity"):
            ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link,
                         flow_multiplicity=2, start_times=[0.0])
        with pytest.raises(ValueError, match="flow_multiplicity"):
            ScenarioSpec(protocols=[AIMD(1, 0.5)], link=link,
                         flow_multiplicity=2, schedule=EventSchedule())


class TestSimulator:
    def test_trigger_separation_is_enforced(self, link):
        class NeverDecreases(AIMD):
            meanfield_trigger = ("gt", 2.0)  # loss is a rate; never hit

        with pytest.raises(ValueError, match="separate"):
            MeanFieldSimulator(
                MeanFieldScenario(
                    link=link,
                    groups=[MeanFieldGroup(NeverDecreases(1, 0.5), 2)],
                    steps=4,
                )
            )

    def test_robust_aimd_ignores_subthreshold_random_loss(self):
        # An uncongested link: the only loss signal is the random rate.
        big = Link.from_mbps(1000, 42, 5000)

        def tail_mean(protocol, rate):
            scenario = MeanFieldScenario(
                link=big,
                groups=[MeanFieldGroup(protocol=protocol, population=4)],
                steps=400,
                random_loss_rate=rate,
                max_window=40.0,
            )
            result = MeanFieldSimulator(scenario).run()
            return float(result.mean_windows[-100:, 0].mean())

        epsilon = 0.05
        lossy = tail_mean(RobustAIMD(1, 0.5, epsilon), 0.02)
        clean = tail_mean(RobustAIMD(1, 0.5, epsilon), 0.0)
        # Below-epsilon random loss is ignored entirely (the robustness
        # property the protocol exists for), so the dynamics are identical.
        assert lossy == pytest.approx(clean)
        plain_lossy = tail_mean(AIMD(1, 0.5), 0.02)
        assert plain_lossy < clean  # plain AIMD *does* back off

    def test_result_shapes_and_positive_rtts(self, link):
        scenario = MeanFieldScenario(
            link=link,
            groups=[
                MeanFieldGroup(protocol=AIMD(1, 0.5), population=3),
                MeanFieldGroup(protocol=MIMD(1.02, 0.6), population=2),
            ],
            steps=50,
        )
        result = MeanFieldSimulator(scenario).run()
        assert result.mean_windows.shape == (50, 2)
        assert result.observed_loss.shape == (50, 2)
        assert result.rtts.shape == (50,)
        assert (result.rtts >= link.base_rtt).all()
        assert result.populations.tolist() == [3, 2]
        assert len(result.masses) == 2


class TestBackendIntegration:
    def test_meanfield_is_registered(self):
        assert "meanfield" in backend_names()
        assert get_backend("meanfield").name == "meanfield"

    def test_run_spec_returns_unified_trace(self, spec):
        trace = run_spec(spec, "meanfield", use_cache=False)
        assert isinstance(trace, UnifiedTrace)
        assert trace.backend == "meanfield"
        assert trace.steps == 200
        # One column per (merged) flow class, not per flow.
        assert trace.windows.shape == (200, 1)
        assert trace.flow_rtts.shape == trace.windows.shape

    def test_windows_are_population_aggregates(self, spec):
        trace = run_spec(spec, "meanfield", use_cache=False)
        scenario = spec.lower_meanfield()
        result = MeanFieldSimulator(scenario).run()
        np.testing.assert_allclose(
            trace.total_window(), result.mean_windows[:, 0] * 4
        )

    def test_agrees_with_synchronized_fluid_aggregate(self, spec):
        meanfield = run_spec(spec, "meanfield", use_cache=False)
        fluid = run_spec(spec, "fluid", use_cache=False)
        mf_tail = meanfield.total_window()[-50:].mean()
        fl_tail = fluid.total_window()[-50:].mean()
        assert mf_tail == pytest.approx(fl_tail, rel=0.02)

    def test_cache_round_trip_is_bit_identical(self, tmp_path, spec):
        from repro.perf.cache import TraceCache
        from repro.perf.store import (
            load_unified_trace,
            store_unified_trace,
            unified_key,
        )

        trace = run_spec(spec, "meanfield", use_cache=False)
        cache = TraceCache(tmp_path)
        key = unified_key("meanfield", spec)
        assert key is not None
        store_unified_trace(cache, key, trace)
        loaded = load_unified_trace(cache, key)
        assert loaded is not None
        np.testing.assert_array_equal(loaded.windows, trace.windows)
        np.testing.assert_array_equal(loaded.observed_loss, trace.observed_loss)
        np.testing.assert_array_equal(loaded.flow_rtts, trace.flow_rtts)
        assert loaded.backend == "meanfield"

    def test_metric_estimators_accept_meanfield_traces(self, link):
        from repro.core.metrics import (
            convergence_from_trace,
            divergence_from_trace,
            efficiency_from_trace,
            fairness_from_trace,
            fast_utilization_from_trace,
            friendliness_from_trace,
            latency_from_trace,
            loss_avoidance_from_trace,
        )

        # Link capacity scaled to the population so the per-flow share
        # stays sane and sawtooth growth has loss-free intervals.
        spec = ScenarioSpec(
            protocols=[AIMD(1, 0.5), MIMD(1.02, 0.6)],
            link=Link.from_mbps(4000, 42, 20000),
            steps=200,
            flow_multiplicity=1000,
        )
        trace = run_spec(spec, "meanfield", use_cache=False)
        scores = {
            "efficiency": efficiency_from_trace(trace).score,
            "fast_utilization": fast_utilization_from_trace(trace).score,
            "loss_avoidance": loss_avoidance_from_trace(trace).score,
            "fairness": fairness_from_trace(trace).score,
            "convergence": convergence_from_trace(trace).score,
            "friendliness": friendliness_from_trace(
                trace, p_senders=[0], q_senders=[1]
            ),
            "latency": latency_from_trace(trace).score,
        }
        assert all(np.isfinite(s) for s in scores.values()), scores
        assert isinstance(divergence_from_trace(trace), bool)
