"""Metrics I and III: efficiency and loss-avoidance estimators."""

import pytest

from repro.core.metrics.base import EstimatorConfig
from repro.core.metrics.efficiency import efficiency_from_trace, estimate_efficiency
from repro.core.metrics.loss_avoidance import (
    estimate_loss_avoidance,
    loss_avoidance_from_trace,
)
from repro.core.theory import table1
from repro.model.dynamics import run_homogeneous
from repro.protocols.aimd import AIMD
from repro.protocols.mimd import MIMD
from repro.protocols.probe import ProbeAndHold


class TestEfficiency:
    @pytest.mark.parametrize("b", [0.3, 0.5, 0.8])
    def test_aimd_matches_nuanced_theory(self, emulab_link, fast_config, b):
        # Table 1: AIMD(a, b) is min(1, b(1 + tau/C))-efficient.
        result = estimate_efficiency(AIMD(1, b), emulab_link, fast_config)
        predicted = table1.multiplicative_efficiency(
            b, emulab_link.capacity, emulab_link.buffer_size
        )
        assert min(1.0, result.score) == pytest.approx(predicted, abs=0.07)

    def test_capped_score_in_detail(self, emulab_link, fast_config):
        result = estimate_efficiency(AIMD(1, 0.5), emulab_link, fast_config)
        assert result.detail["capped_score"] <= 1.0

    def test_shallow_buffer_hurts_reno(self, shallow_link, emulab_link, fast_config):
        deep = estimate_efficiency(AIMD(1, 0.5), emulab_link, fast_config)
        shallow = estimate_efficiency(AIMD(1, 0.5), shallow_link, fast_config)
        assert shallow.score < deep.score

    def test_larger_b_means_higher_efficiency(self, shallow_link, fast_config):
        scores = [
            estimate_efficiency(AIMD(1, b), shallow_link, fast_config).score
            for b in (0.3, 0.6, 0.9)
        ]
        assert scores == sorted(scores)

    def test_from_trace_uses_minimum(self, emulab_link):
        trace = run_homogeneous(emulab_link, AIMD(1, 0.5), 2, 1000)
        result = efficiency_from_trace(trace)
        ratio = trace.tail(0.5).total_window() / trace.tail(0.5).capacities
        assert result.score == pytest.approx(float(ratio.min()))


class TestLossAvoidance:
    def test_aimd_two_senders_matches_overshoot_formula(self, emulab_link, fast_config):
        # Loss quantum 1 - (C+tau)/(C+tau+n*a).
        result = estimate_loss_avoidance(AIMD(1, 0.5), emulab_link, fast_config)
        predicted = table1.additive_overshoot_loss(
            2 * 1.0, emulab_link.capacity, emulab_link.buffer_size
        )
        assert result.score == pytest.approx(predicted, rel=0.3)

    def test_larger_increment_more_loss(self, emulab_link, fast_config):
        small = estimate_loss_avoidance(AIMD(1, 0.5), emulab_link, fast_config)
        big = estimate_loss_avoidance(AIMD(8, 0.5), emulab_link, fast_config)
        assert big.score > small.score

    def test_probe_and_hold_is_zero_loss(self, emulab_link, fast_config):
        result = estimate_loss_avoidance(ProbeAndHold(1, 0.9), emulab_link,
                                         fast_config)
        assert result.score == 0.0
        assert result.detail["is_zero_loss"]

    def test_mimd_loss_scale(self, emulab_link, fast_config):
        # MIMD's overshoot is ~(a-1) of the pipe: small for a=1.01.
        result = estimate_loss_avoidance(MIMD(1.01, 0.875), emulab_link, fast_config)
        assert 0.0 < result.score < 0.05

    def test_from_trace_detail_fields(self, emulab_link):
        trace = run_homogeneous(emulab_link, AIMD(1, 0.5), 2, 800)
        result = loss_avoidance_from_trace(trace)
        assert 0 <= result.detail["loss_event_fraction"] <= 1
        assert result.detail["mean_loss"] <= result.score
