"""Extension axioms: responsiveness and churn resilience."""

import math

import pytest

from repro.core.metrics.extensions import (
    estimate_churn_resilience,
    estimate_responsiveness,
)
from repro.protocols.aimd import AIMD
from repro.protocols.mimd import MIMD
from repro.protocols.probe import ProbeAndHold


class TestResponsiveness:
    def test_aimd_reclaims_doubled_link(self, emulab_link):
        result = estimate_responsiveness(AIMD(1, 0.5), emulab_link)
        assert math.isfinite(result.score)
        assert result.score > 0

    def test_faster_increase_responds_faster(self, emulab_link):
        slow = estimate_responsiveness(AIMD(0.25, 0.5), emulab_link)
        fast = estimate_responsiveness(AIMD(4, 0.5), emulab_link)
        assert fast.score < slow.score

    def test_mimd_responds_quickly(self, emulab_link):
        # Superlinear probing reclaims spare capacity fast.
        mimd = estimate_responsiveness(MIMD(1.05, 0.875), emulab_link)
        aimd = estimate_responsiveness(AIMD(0.5, 0.5), emulab_link)
        assert mimd.score < aimd.score

    def test_probe_and_hold_never_responds(self, emulab_link):
        # After its first loss the protocol holds: a capacity doubling
        # goes permanently unclaimed — the temporal face of Claim 1.
        result = estimate_responsiveness(ProbeAndHold(1, 0.9), emulab_link)
        assert math.isinf(result.score)

    def test_validation(self, emulab_link):
        with pytest.raises(ValueError):
            estimate_responsiveness(AIMD(1, 0.5), emulab_link, target_fraction=0.0)
        with pytest.raises(ValueError):
            estimate_responsiveness(AIMD(1, 0.5), emulab_link, warmup_steps=0)


class TestChurnResilience:
    def test_aimd_joiner_reaches_half_share(self, emulab_link):
        result = estimate_churn_resilience(AIMD(1, 0.5), emulab_link)
        assert math.isfinite(result.score)
        assert result.detail["joiner_final_window"] > result.detail["target_window"]

    def test_mimd_starves_joiners(self, emulab_link):
        # MIMD preserves ratios: an incumbent at capacity vs a 1-MSS joiner
        # stays ~C:1 forever, so the joiner never reaches half share.
        result = estimate_churn_resilience(MIMD(1.01, 0.875), emulab_link)
        assert math.isinf(result.score)

    def test_more_incumbents_is_harder_but_share_shrinks(self, emulab_link):
        one = estimate_churn_resilience(AIMD(1, 0.5), emulab_link, incumbents=1)
        three = estimate_churn_resilience(AIMD(1, 0.5), emulab_link, incumbents=3)
        assert three.detail["fair_share"] < one.detail["fair_share"]
        assert math.isfinite(three.score)

    def test_validation(self, emulab_link):
        with pytest.raises(ValueError):
            estimate_churn_resilience(AIMD(1, 0.5), emulab_link, incumbents=0)
        with pytest.raises(ValueError):
            estimate_churn_resilience(AIMD(1, 0.5), emulab_link, share_fraction=2.0)


class TestUnsynchronizedLoss:
    """The unsynchronized-feedback model variant (future-work extension)."""

    def test_small_flow_often_spared(self, emulab_link):
        import numpy as np

        from repro.model.dynamics import FluidSimulator, SimulationConfig

        config = SimulationConfig(
            initial_windows=[150.0, 2.0], unsynchronized_loss=True, seed=5
        )
        sim = FluidSimulator(emulab_link, [AIMD(1, 0.5)] * 2, config)
        trace = sim.run(2000)
        lossy_steps = trace.congestion_loss > 0
        big_noticed = (trace.observed_loss[lossy_steps, 0] > 0).mean()
        small_noticed = (trace.observed_loss[lossy_steps, 1] > 0).mean()
        assert small_noticed < big_noticed

    def test_deterministic_given_seed(self, emulab_link):
        import numpy as np

        from repro.model.dynamics import FluidSimulator, SimulationConfig

        def run():
            config = SimulationConfig(
                initial_windows=[50.0, 1.0], unsynchronized_loss=True, seed=9
            )
            return FluidSimulator(emulab_link, [AIMD(1, 0.5)] * 2, config).run(500)

        np.testing.assert_array_equal(run().windows, run().windows)

    def test_synchronized_default_unchanged(self, emulab_link):
        import numpy as np

        from repro.model.dynamics import FluidSimulator, SimulationConfig

        config = SimulationConfig(initial_windows=[150.0, 2.0])
        trace = FluidSimulator(emulab_link, [AIMD(1, 0.5)] * 2, config).run(500)
        lossy = trace.congestion_loss > 0
        # Synchronized feedback: everyone sees every loss event.
        np.testing.assert_array_equal(
            trace.observed_loss[lossy, 0] > 0, trace.observed_loss[lossy, 1] > 0
        )
