"""Metrics IV and V: fairness and convergence estimators."""

import pytest

from repro.core.metrics.base import EstimatorConfig
from repro.core.metrics.convergence import convergence_from_trace, estimate_convergence
from repro.core.metrics.fairness import estimate_fairness, fairness_from_trace
from repro.model.dynamics import run_homogeneous
from repro.protocols.aimd import AIMD
from repro.protocols.mimd import MIMD


class TestFairness:
    def test_aimd_equalizes_from_any_start(self, emulab_link, fast_config):
        # Table 1: AIMD is 1-fair — even from maximally unequal windows.
        result = estimate_fairness(AIMD(1, 0.5), emulab_link, fast_config)
        assert result.score > 0.9

    def test_mimd_preserves_inequality(self, emulab_link, fast_config):
        # Table 1: MIMD is 0-fair (ratio-preserving).
        result = estimate_fairness(MIMD(1.01, 0.875), emulab_link, fast_config)
        assert result.score < 0.1

    def test_four_senders(self, emulab_link):
        config = EstimatorConfig(steps=2500, n_senders=4)
        result = estimate_fairness(AIMD(1, 0.5), emulab_link, config)
        assert result.score > 0.8

    def test_jain_index_reported(self, emulab_link, fast_config):
        result = estimate_fairness(AIMD(1, 0.5), emulab_link, fast_config)
        assert 0 < result.detail["jain_index"] <= 1.0

    def test_requires_two_senders(self, emulab_link):
        config = EstimatorConfig(steps=100, n_senders=1)
        with pytest.raises(ValueError):
            estimate_fairness(AIMD(1, 0.5), emulab_link, config)

    def test_from_trace_requires_two_senders(self, emulab_link):
        trace = run_homogeneous(emulab_link, AIMD(1, 0.5), 1, 100)
        with pytest.raises(ValueError):
            fairness_from_trace(trace)


class TestConvergence:
    @pytest.mark.parametrize("b,expected", [(0.5, 2 * 0.5 / 1.5),
                                            (0.8, 2 * 0.8 / 1.8)])
    def test_aimd_matches_2b_over_1_plus_b(self, emulab_link, fast_config, b,
                                           expected):
        # The Table 1 convergence column, reproduced by the estimator.
        result = estimate_convergence(AIMD(1, b), emulab_link, fast_config)
        assert result.score == pytest.approx(expected, abs=0.05)

    def test_per_sender_detail(self, emulab_link, fast_config):
        result = estimate_convergence(AIMD(1, 0.5), emulab_link, fast_config)
        assert len(result.detail["per_sender_alpha"]) == fast_config.n_senders
        assert result.score == min(result.detail["per_sender_alpha"])

    def test_gentler_backoff_converges_tighter(self, emulab_link, fast_config):
        rough = estimate_convergence(AIMD(1, 0.3), emulab_link, fast_config)
        gentle = estimate_convergence(AIMD(1, 0.9), emulab_link, fast_config)
        assert gentle.score > rough.score

    def test_from_trace(self, emulab_link):
        trace = run_homogeneous(emulab_link, AIMD(1, 0.5), 2, 1200)
        result = convergence_from_trace(trace)
        assert 0 < result.score <= 1.0
