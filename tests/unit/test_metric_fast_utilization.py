"""Metric II: fast-utilization estimator."""

import math

import numpy as np
import pytest

from repro.core.metrics.base import EstimatorConfig
from repro.core.metrics.fast_utilization import (
    estimate_fast_utilization,
    estimate_unconstrained_growth,
    fast_utilization_from_trace,
    witnessed_alpha,
)
from repro.model.dynamics import run_homogeneous
from repro.protocols.aimd import AIMD
from repro.protocols.binomial import BIN
from repro.protocols.mimd import MIMD
from repro.protocols.probe import ProbeAndHold


class TestWitnessedAlpha:
    def test_linear_growth_witnesses_slope(self):
        # x(t) = x0 + a*t gives 2S/dt^2 = a(1 + 1/dt) -> a.
        a, dt = 2.0, 100
        windows = np.array([10.0 + a * t for t in range(dt + 1)])
        assert witnessed_alpha(windows) == pytest.approx(a, rel=0.02)

    def test_flat_growth_witnesses_zero(self):
        assert witnessed_alpha(np.full(50, 7.0)) == 0.0

    def test_exponential_growth_witnesses_more_with_longer_interval(self):
        series = np.array([1.01**t for t in range(1200)])
        assert witnessed_alpha(series) > witnessed_alpha(series[:600])

    def test_too_short(self):
        with pytest.raises(ValueError):
            witnessed_alpha(np.array([1.0]))


class TestEstimator:
    @pytest.mark.parametrize("a", [0.5, 1.0, 2.0])
    def test_aimd_witnesses_a(self, emulab_link, fast_config, a):
        result = estimate_fast_utilization(AIMD(a, 0.5), emulab_link, fast_config)
        assert result.score == pytest.approx(a, rel=0.05)

    def test_probe_and_hold_witnesses_zero(self, emulab_link, fast_config):
        # Claim 1's counterexample: after the hold begins, an endless
        # loss-free zero-growth interval pins the witnessed alpha at 0.
        result = estimate_fast_utilization(
            ProbeAndHold(1, 0.9), emulab_link, fast_config
        )
        assert result.score == 0.0

    def test_nan_when_no_long_interval(self, emulab_link):
        # With the adaptive fallback disabled, an interval requirement
        # longer than the run yields no estimate.
        trace = run_homogeneous(emulab_link, AIMD(1, 0.5), 1, 50)
        result = fast_utilization_from_trace(trace, min_interval=1000,
                                             adaptive=False)
        assert math.isnan(result.score)

    def test_adaptive_fallback_recovers_estimate(self, emulab_link):
        # The same request with the fallback enabled halves the requirement
        # until the run's loss-free intervals qualify.
        trace = run_homogeneous(emulab_link, AIMD(1, 0.5), 1, 600)
        result = fast_utilization_from_trace(trace, min_interval=4096)
        assert not math.isnan(result.score)
        assert result.detail["min_interval_used"] < 4096

    def test_min_interval_validation(self, emulab_link):
        trace = run_homogeneous(emulab_link, AIMD(1, 0.5), 1, 50)
        with pytest.raises(ValueError):
            fast_utilization_from_trace(trace, min_interval=1)


class TestUnconstrainedGrowth:
    def test_aimd_is_linear(self):
        result = estimate_unconstrained_growth(AIMD(1, 0.5), horizon=400)
        assert result.detail["trend"] == "linear"
        assert result.score == pytest.approx(1.0, rel=0.05)

    def test_mimd_is_superlinear(self):
        result = estimate_unconstrained_growth(MIMD(1.02, 0.875), horizon=800)
        assert result.detail["trend"] == "superlinear"

    def test_iiad_is_sublinear(self):
        result = estimate_unconstrained_growth(
            BIN(1, 1, 1, 0), horizon=800, start_window=4.0
        )
        assert result.detail["trend"] == "sublinear"
        assert result.score < 0.5

    def test_horizon_validation(self):
        with pytest.raises(ValueError):
            estimate_unconstrained_growth(AIMD(1, 0.5), horizon=2)
