"""Metrics VII and VIII: friendliness and latency-avoidance estimators."""

import pytest

from repro.core.metrics.base import EstimatorConfig
from repro.core.metrics.friendliness import (
    estimate_friendliness,
    estimate_tcp_friendliness,
    friendliness_from_trace,
)
from repro.core.metrics.latency import (
    deep_buffer_link,
    estimate_latency_avoidance,
    latency_from_trace,
)
from repro.core.theory.theorems import theorem2_friendliness_bound
from repro.model.dynamics import FluidSimulator, SimulationConfig, run_homogeneous
from repro.protocols.aimd import AIMD
from repro.protocols.mimd import MIMD
from repro.protocols.vegas import VegasLike


class TestFriendliness:
    def test_reno_is_one_friendly_to_itself(self, emulab_link, fast_config):
        result = estimate_tcp_friendliness(AIMD(1, 0.5), emulab_link, fast_config)
        assert result.score == pytest.approx(1.0, abs=0.05)

    @pytest.mark.parametrize("a,b", [(2.0, 0.5), (1.0, 0.8)])
    def test_aimd_attains_theorem2_bound(self, emulab_link, fast_config, a, b):
        # The tightness half of Theorem 2.
        result = estimate_tcp_friendliness(AIMD(a, b), emulab_link, fast_config)
        assert result.score == pytest.approx(
            theorem2_friendliness_bound(a, b), rel=0.1
        )

    def test_gentler_protocol_scores_above_one(self, emulab_link, fast_config):
        # AIMD(0.5, 0.5) is *less* aggressive than Reno, so Reno keeps more.
        result = estimate_tcp_friendliness(AIMD(0.5, 0.5), emulab_link, fast_config)
        assert result.score > 1.5

    def test_mimd_is_unfriendly(self, emulab_link, fast_config):
        result = estimate_tcp_friendliness(
            MIMD(1.01, 0.875), emulab_link, fast_config
        )
        assert result.score < 0.3

    def test_per_mix_detail(self, emulab_link):
        config = EstimatorConfig(steps=1200, n_senders=3)
        result = estimate_friendliness(
            AIMD(2, 0.5), AIMD(1, 0.5), emulab_link, config
        )
        assert set(result.detail["per_mix"]) == {"1P/2Q", "2P/1Q"}

    def test_from_trace_validation(self, emulab_link):
        trace = run_homogeneous(emulab_link, AIMD(1, 0.5), 2, 100)
        with pytest.raises(ValueError):
            friendliness_from_trace(trace, [], [0])
        with pytest.raises(ValueError):
            friendliness_from_trace(trace, [0], [0])


class TestLatency:
    def test_deep_buffer_link_scales_with_capacity(self, emulab_link):
        deep = deep_buffer_link(emulab_link, 4.0)
        assert deep.buffer_size == pytest.approx(4 * emulab_link.capacity)
        with pytest.raises(ValueError):
            deep_buffer_link(emulab_link, 0.0)

    def test_loss_based_protocols_inflate_latency(self, emulab_link, fast_config):
        # Reno fills whatever buffer exists: inflation far above zero.
        result = estimate_latency_avoidance(AIMD(1, 0.5), emulab_link, fast_config)
        assert result.score > 1.0

    def test_vegas_keeps_latency_low(self, emulab_link, fast_config):
        result = estimate_latency_avoidance(
            VegasLike(gamma=0.2), emulab_link, fast_config
        )
        assert result.score < 0.5

    def test_vegas_beats_reno(self, emulab_link, fast_config):
        reno = estimate_latency_avoidance(AIMD(1, 0.5), emulab_link, fast_config)
        vegas = estimate_latency_avoidance(VegasLike(0.2), emulab_link, fast_config)
        assert vegas.score < reno.score

    def test_from_trace_reports_max(self, emulab_link):
        trace = run_homogeneous(emulab_link, AIMD(1, 0.5), 1, 600)
        result = latency_from_trace(trace)
        assert result.score >= result.detail["mean_inflation"]
