"""Metric VI: robustness to non-congestion loss."""

import pytest

from repro.core.metrics.robustness import (
    diverges_under_loss,
    estimate_robustness,
    robustness_profile,
)
from repro.protocols.aimd import AIMD
from repro.protocols.cubic import CUBIC
from repro.protocols.mimd import MIMD
from repro.protocols.robust_aimd import RobustAIMD


class TestDivergence:
    def test_everything_diverges_without_loss(self):
        assert diverges_under_loss(AIMD(1, 0.5), 0.0, horizon=500)

    def test_reno_stalls_at_any_constant_loss(self):
        # The PCC motivating observation: even tiny persistent random loss
        # keeps TCP at the window floor.
        assert not diverges_under_loss(AIMD(1, 0.5), 0.001, horizon=500)

    def test_robust_aimd_shrugs_off_subthreshold_loss(self):
        assert diverges_under_loss(RobustAIMD(1, 0.8, 0.01), 0.005, horizon=500)

    def test_robust_aimd_stalls_above_threshold(self):
        assert not diverges_under_loss(RobustAIMD(1, 0.8, 0.01), 0.02, horizon=500)

    def test_validation(self):
        with pytest.raises(ValueError):
            diverges_under_loss(AIMD(1, 0.5), 1.5)
        with pytest.raises(ValueError):
            diverges_under_loss(AIMD(1, 0.5), 0.1, horizon=2)


class TestEstimate:
    @pytest.mark.parametrize("protocol", [
        AIMD(1, 0.5), MIMD(1.01, 0.875), CUBIC(0.4, 0.8),
    ])
    def test_classic_protocols_are_zero_robust(self, protocol):
        # Table 1: "all protocols are 0-robust" except Robust-AIMD.
        result = estimate_robustness(protocol, horizon=600)
        assert result.score == 0.0

    @pytest.mark.parametrize("eps", [0.01, 0.05])
    def test_robust_aimd_is_epsilon_robust(self, eps):
        # Table 1: Robust-AIMD(a, b, eps) is eps-robust. The bisection
        # should land within a few tolerance units of eps.
        result = estimate_robustness(
            RobustAIMD(1, 0.8, eps), tolerance=2e-3, horizon=800
        )
        assert result.score == pytest.approx(eps, abs=5e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_robustness(AIMD(1, 0.5), max_rate=0.0)
        with pytest.raises(ValueError):
            estimate_robustness(AIMD(1, 0.5), tolerance=0.0)


class TestProfile:
    def test_profile_shape(self):
        profile = robustness_profile(
            RobustAIMD(1, 0.8, 0.01), rates=[0.001, 0.005, 0.02], horizon=500
        )
        assert profile[0.001] is True
        assert profile[0.005] is True
        assert profile[0.02] is False
