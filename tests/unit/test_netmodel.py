"""The multi-link network extension (repro.netmodel)."""

import numpy as np
import pytest

from repro.model.dynamics import FluidSimulator, SimulationConfig
from repro.model.link import Link
from repro.netmodel import (
    NetworkFluidSimulator,
    Topology,
    dumbbell,
    parking_lot,
    single_link,
)
from repro.protocols.aimd import AIMD


class TestTopology:
    def test_add_link_and_flow(self, emulab_link):
        topo = Topology().add_link("a", emulab_link)
        index = topo.add_flow(["a"])
        assert index == 0
        assert topo.n_flows == 1

    def test_duplicate_link_name_rejected(self, emulab_link):
        topo = Topology().add_link("a", emulab_link)
        with pytest.raises(ValueError):
            topo.add_link("a", emulab_link)

    def test_unknown_link_in_path_rejected(self, emulab_link):
        topo = Topology().add_link("a", emulab_link)
        with pytest.raises(ValueError):
            topo.add_flow(["b"])

    def test_repeated_link_in_path_rejected(self, emulab_link):
        topo = Topology().add_link("a", emulab_link)
        with pytest.raises(ValueError):
            topo.add_flow(["a", "a"])

    def test_flows_through(self, emulab_link):
        topo = parking_lot(emulab_link, 3)
        # The long flow plus the hop-local short flow.
        assert topo.flows_through("hop-1") == [0, 2]

    def test_base_rtt_sums_path(self, emulab_link):
        topo = parking_lot(emulab_link, 3)
        assert topo.base_rtt_of(0) == pytest.approx(3 * emulab_link.base_rtt)
        assert topo.base_rtt_of(1) == pytest.approx(emulab_link.base_rtt)

    def test_validate_empty(self):
        with pytest.raises(ValueError):
            Topology().validate()

    def test_graph_view(self, emulab_link):
        graph = parking_lot(emulab_link, 2).graph()
        assert graph.number_of_edges() == 2

    def test_builders_validate(self, emulab_link):
        with pytest.raises(ValueError):
            single_link(emulab_link, 0)
        with pytest.raises(ValueError):
            dumbbell(emulab_link, emulab_link, 0)
        with pytest.raises(ValueError):
            parking_lot(emulab_link, 1)


class TestSingleLinkEquivalence:
    """On a single-link topology the network model IS the paper's model."""

    def test_windows_match_single_link_simulator(self, emulab_link):
        protocols = [AIMD(1, 0.5), AIMD(1, 0.5)]
        reference = FluidSimulator(
            emulab_link, protocols, SimulationConfig(initial_windows=[30.0, 1.0])
        ).run(800)
        network = NetworkFluidSimulator(
            single_link(emulab_link, 2), protocols,
            initial_windows=[30.0, 1.0],
        ).run(800)
        np.testing.assert_allclose(network.windows, reference.windows)

    def test_loss_matches(self, emulab_link):
        protocols = [AIMD(1, 0.5)] * 2
        reference = FluidSimulator(emulab_link, protocols).run(600)
        network = NetworkFluidSimulator(single_link(emulab_link, 2),
                                        protocols).run(600)
        np.testing.assert_allclose(
            network.flow_loss[:, 0], reference.observed_loss[:, 0]
        )


class TestNetworkDynamics:
    def test_parking_lot_long_flow_gets_less_goodput(self, emulab_link):
        # The canonical multi-link result: the flow crossing every hop
        # delivers less than the single-hop flows (longer RTT for the same
        # window, exposure to every bottleneck).
        topo = parking_lot(emulab_link, 3)
        sim = NetworkFluidSimulator(topo, [AIMD(1, 0.5)] * topo.n_flows)
        trace = sim.run(3000).tail(0.5)
        goodput = trace.mean_goodput()
        assert all(goodput[0] < g for g in goodput[1:])

    def test_desynchronized_hops_shrink_long_flow_window(self):
        # With hops of different capacity the loss events desynchronize;
        # the long flow backs off whenever *either* hop loses and ends up
        # with a smaller window than the short flows too.
        topo = Topology()
        topo.add_link("hop-0", Link.from_mbps(20, 42, 60))
        topo.add_link("hop-1", Link.from_mbps(33, 42, 100))
        topo.add_flow(["hop-0", "hop-1"])
        topo.add_flow(["hop-0"])
        topo.add_flow(["hop-1"])
        sim = NetworkFluidSimulator(topo, [AIMD(1, 0.5)] * 3)
        trace = sim.run(4000).tail(0.5)
        means = trace.mean_windows()
        assert means[0] < means[1]
        assert means[0] < means[2]

    def test_dumbbell_bottleneck_is_the_shared_link(self):
        fat_access = Link.from_mbps(100, 10, 50)
        thin_bottleneck = Link.from_mbps(20, 20, 50)
        topo = dumbbell(fat_access, thin_bottleneck, 3)
        sim = NetworkFluidSimulator(topo, [AIMD(1, 0.5)] * 3)
        trace = sim.run(2000).tail(0.5)
        capacities = np.array(
            [topo.links[name].capacity for name in trace.link_names]
        )
        utilization = trace.link_utilization(capacities)
        by_name = dict(zip(trace.link_names, utilization))
        assert by_name["bottleneck"] > 0.7
        for i in range(3):
            assert by_name[f"access-{i}"] < by_name["bottleneck"]

    def test_symmetric_short_flows_fair(self, emulab_link):
        topo = parking_lot(emulab_link, 2)
        sim = NetworkFluidSimulator(topo, [AIMD(1, 0.5)] * 3)
        trace = sim.run(3000).tail(0.5)
        means = trace.mean_windows()
        assert means[1] == pytest.approx(means[2], rel=0.15)

    def test_rtt_inflation_reported_per_flow(self, emulab_link):
        topo = parking_lot(emulab_link, 2)
        sim = NetworkFluidSimulator(topo, [AIMD(1, 0.5)] * 3)
        trace = sim.run(1000).tail(0.5)
        inflation = trace.flow_rtt_inflation()
        assert (inflation >= 1.0 - 1e-9).all()

    def test_protocol_count_validated(self, emulab_link):
        topo = single_link(emulab_link, 2)
        with pytest.raises(ValueError):
            NetworkFluidSimulator(topo, [AIMD(1, 0.5)])

    def test_initial_window_count_validated(self, emulab_link):
        topo = single_link(emulab_link, 2)
        with pytest.raises(ValueError):
            NetworkFluidSimulator(topo, [AIMD(1, 0.5)] * 2,
                                  initial_windows=[1.0])

    def test_steps_validated(self, emulab_link):
        sim = NetworkFluidSimulator(single_link(emulab_link, 1), [AIMD(1, 0.5)])
        with pytest.raises(ValueError):
            sim.run(0)

    def test_deterministic(self, emulab_link):
        topo = parking_lot(emulab_link, 2)
        t1 = NetworkFluidSimulator(topo, [AIMD(1, 0.5)] * 3).run(500)
        t2 = NetworkFluidSimulator(topo, [AIMD(1, 0.5)] * 3).run(500)
        np.testing.assert_array_equal(t1.windows, t2.windows)


class TestNetworkTraceValidation:
    def test_shape_mismatch_rejected(self, emulab_link):
        sim = NetworkFluidSimulator(single_link(emulab_link, 1), [AIMD(1, 0.5)])
        trace = sim.run(10)
        from repro.netmodel.trace import NetworkTrace

        with pytest.raises(ValueError):
            NetworkTrace(
                windows=trace.windows,
                flow_loss=trace.flow_loss[:5],
                flow_rtts=trace.flow_rtts,
                link_load=trace.link_load,
                link_loss=trace.link_loss,
                link_names=trace.link_names,
                base_rtts=trace.base_rtts,
            )

    def test_tail_fraction_validated(self, emulab_link):
        sim = NetworkFluidSimulator(single_link(emulab_link, 1), [AIMD(1, 0.5)])
        trace = sim.run(10)
        with pytest.raises(ValueError):
            trace.tail(0.0)
