"""Packet-run cache keying and round-tripping (repro.perf.packet_cache)."""

import numpy as np
import pytest

from repro.model.link import Link
from repro.packetsim.scenario import PacketScenario, run_scenario
from repro.packetsim.workload import FlowSpec, poisson_workload, run_workload
from repro.perf import packet_cache
from repro.perf.cache import TraceCache, cache_enabled
from repro.protocols import presets


def scenario(**overrides) -> PacketScenario:
    defaults = dict(
        bandwidth_mbps=20.0, rtt_ms=42.0, buffer_mss=100,
        protocols=[presets.reno(), presets.reno()],
        duration=5.0, seed=1,
    )
    defaults.update(overrides)
    return PacketScenario.from_mbps(
        defaults.pop("bandwidth_mbps"),
        defaults.pop("rtt_ms"),
        defaults.pop("buffer_mss"),
        defaults.pop("protocols"),
        **defaults,
    )


class TestScenarioKeying:
    def test_identical_scenarios_share_a_key(self):
        assert packet_cache.scenario_key(scenario()) == \
            packet_cache.scenario_key(scenario())

    @pytest.mark.parametrize("change", [
        dict(bandwidth_mbps=30.0),
        dict(buffer_mss=10),
        dict(seed=2),
        dict(duration=6.0),
        dict(random_loss_rate=0.01),
        dict(protocols=[presets.cubic(), presets.reno()]),
        dict(protocols=[presets.reno(), presets.reno(), presets.reno()]),
        dict(initial_window=2.0),
        dict(start_times=[0.0, 1.0]),
    ])
    def test_any_changed_parameter_changes_the_key(self, change):
        assert packet_cache.scenario_key(scenario()) != \
            packet_cache.scenario_key(scenario(**change))

    def test_protocol_parameters_are_keyed(self):
        from repro.protocols.aimd import AIMD

        a = scenario(protocols=[AIMD(1.0, 0.5), presets.reno()])
        b = scenario(protocols=[AIMD(1.0, 0.875), presets.reno()])
        assert packet_cache.scenario_key(a) != packet_cache.scenario_key(b)


class TestWorkloadKeying:
    def key(self, link=None, specs=None, duration=8.0, background=(),
            slow_start=True, initial_window=1.0):
        link = link or Link.from_mbps(20, 42, 100)
        if specs is None:
            specs = [FlowSpec(0.5, 10, presets.reno())]
        return packet_cache.workload_key(
            link, specs, duration, list(background), slow_start, initial_window
        )

    def test_identical_workloads_share_a_key(self):
        assert self.key() == self.key()

    def test_changed_inputs_miss(self):
        base = self.key()
        assert base != self.key(link=Link.from_mbps(30, 42, 100))
        assert base != self.key(specs=[FlowSpec(0.5, 11, presets.reno())])
        assert base != self.key(duration=9.0)
        assert base != self.key(background=[presets.cubic()])
        assert base != self.key(slow_start=False)
        assert base != self.key(initial_window=2.0)


def _flow_bits(stats):
    return (
        stats.packets_sent,
        stats.packets_acked,
        stats.packets_lost,
        stats.rounds_completed,
        stats.retransmissions,
        stats.completed_at,
        np.asarray(stats.ack_times).view(np.uint64).tolist(),
        np.asarray(stats.loss_times).view(np.uint64).tolist(),
        np.asarray(stats.rtt_samples).view(np.uint64).tolist(),
        np.asarray(stats.window_samples, dtype=np.float64)
        .reshape(-1).view(np.uint64).tolist(),
    )


class TestRoundTrip:
    def test_scenario_hit_round_trips_exactly(self, tmp_path):
        sc = scenario(sample_queue=True)
        with cache_enabled(tmp_path) as cache:
            cold = run_scenario(sc)
            warm = run_scenario(sc)
            assert cache.misses == 1
            assert cache.hits == 1
        assert warm.events == cold.events
        assert warm.duration == cold.duration
        for a, b in zip(warm.flows, cold.flows, strict=True):
            assert _flow_bits(a) == _flow_bits(b)
        assert warm.queue.enqueued == cold.queue.enqueued
        assert warm.queue.dropped == cold.queue.dropped
        assert warm.queue.departed == cold.queue.departed
        assert warm.queue.max_occupancy == cold.queue.max_occupancy
        assert warm.queue.occupancy_samples == cold.queue.occupancy_samples
        # Derived statistics agree bit-for-bit too.
        assert warm.throughputs() == cold.throughputs()
        assert warm.mean_rtts() == cold.mean_rtts()

    def test_different_scenario_misses(self, tmp_path):
        with cache_enabled(tmp_path) as cache:
            run_scenario(scenario())
            run_scenario(scenario(seed=2))
            assert cache.misses == 2
            assert cache.hits == 0

    def test_workload_hit_round_trips_exactly(self, tmp_path):
        link = Link.from_mbps(20, 42, 100)
        specs = poisson_workload(1.0, 30, 4.0, presets.reno(), seed=7)
        with cache_enabled(tmp_path) as cache:
            cold = run_workload(link, specs, duration=8.0)
            warm = run_workload(link, specs, duration=8.0)
            assert cache.misses == 1
            assert cache.hits == 1
        for a, b in zip(warm.flows, cold.flows, strict=True):
            assert _flow_bits(a) == _flow_bits(b)
        assert warm.completion_times() == cold.completion_times()
        assert warm.completed == cold.completed

    def test_use_cache_false_bypasses_the_cache(self, tmp_path):
        with cache_enabled(tmp_path) as cache:
            run_scenario(scenario(), use_cache=False)
            assert cache.misses == 0
            assert cache.hits == 0

    def test_no_active_cache_simulates_normally(self):
        result = run_scenario(scenario())
        assert result.events > 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        sc = scenario()
        with cache_enabled(tmp_path) as cache:
            run_scenario(sc)
            (entry,) = cache.entries()
            entry.write_bytes(b"not an npz archive")
            result = run_scenario(sc)
            assert result.events > 0
            assert cache.misses == 2

    def test_raw_array_api_round_trips(self, tmp_path):
        cache = TraceCache(tmp_path)
        key = "ab" + "0" * 62
        arrays = {
            "ints": np.arange(5, dtype=np.int64),
            "floats": np.linspace(0.0, 1.0, 7),
        }
        assert cache.get_arrays(key) is None
        cache.put_arrays(key, arrays)
        loaded = cache.get_arrays(key)
        assert set(loaded) == {"ints", "floats"}
        assert (loaded["ints"] == arrays["ints"]).all()
        assert loaded["floats"].view(np.uint64).tolist() == \
            arrays["floats"].view(np.uint64).tolist()
