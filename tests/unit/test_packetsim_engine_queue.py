"""Event scheduler and droptail queue (repro.packetsim.engine / .queue)."""

import pytest

from repro.packetsim.engine import EventScheduler
from repro.packetsim.packet import Packet
from repro.packetsim.queue import BottleneckQueue


class TestScheduler:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(2.0, lambda: order.append("late"))
        scheduler.schedule(1.0, lambda: order.append("early"))
        scheduler.run_until(5.0)
        assert order == ["early", "late"]

    def test_ties_break_by_insertion_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(1.0, lambda: order.append("first"))
        scheduler.schedule(1.0, lambda: order.append("second"))
        scheduler.run_until(2.0)
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(3.5, lambda: seen.append(scheduler.now))
        scheduler.run_until(10.0)
        assert seen == [3.5]
        assert scheduler.now == 10.0

    def test_events_beyond_horizon_stay_pending(self):
        scheduler = EventScheduler()
        scheduler.schedule(5.0, lambda: None)
        scheduler.run_until(1.0)
        assert scheduler.pending() == 1

    def test_cascading_events(self):
        scheduler = EventScheduler()
        fired = []

        def first():
            fired.append("first")
            scheduler.schedule(1.0, lambda: fired.append("second"))

        scheduler.schedule(1.0, first)
        scheduler.run_until(3.0)
        assert fired == ["first", "second"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run_until(2.0)
        with pytest.raises(ValueError):
            scheduler.schedule_at(1.5, lambda: None)

    def test_run_until_backwards_rejected(self):
        scheduler = EventScheduler()
        scheduler.run_until(5.0)
        with pytest.raises(ValueError):
            scheduler.run_until(1.0)

    def test_event_storm_guard(self):
        scheduler = EventScheduler()

        def rearm():
            scheduler.schedule(0.0, rearm)

        scheduler.schedule(0.0, rearm)
        with pytest.raises(RuntimeError, match="max_events"):
            scheduler.run_until(1.0, max_events=100)

    def test_processed_counter(self):
        scheduler = EventScheduler()
        for _ in range(5):
            scheduler.schedule(0.5, lambda: None)
        scheduler.run_until(1.0)
        assert scheduler.processed_events == 5


def pkt(seq: int, flow: int = 0) -> Packet:
    return Packet(flow_id=flow, sequence=seq, sent_at=0.0, round_index=0)


class TestQueue:
    def make(self, scheduler, capacity=2, bandwidth=10.0):
        departed, dropped = [], []
        queue = BottleneckQueue(
            scheduler,
            bandwidth=bandwidth,
            capacity=capacity,
            on_departure=departed.append,
            on_drop=dropped.append,
        )
        return queue, departed, dropped

    def test_packets_depart_at_service_rate(self):
        scheduler = EventScheduler()
        queue, departed, _ = self.make(scheduler, bandwidth=10.0)
        queue.arrive(pkt(0))
        queue.arrive(pkt(1))
        scheduler.run_until(0.15)
        assert [p.sequence for p in departed] == [0]
        scheduler.run_until(0.25)
        assert [p.sequence for p in departed] == [0, 1]

    def test_fifo_order(self):
        scheduler = EventScheduler()
        queue, departed, _ = self.make(scheduler, capacity=10)
        for seq in range(5):
            queue.arrive(pkt(seq))
        scheduler.run_until(10.0)
        assert [p.sequence for p in departed] == list(range(5))

    def test_droptail_when_full(self):
        scheduler = EventScheduler()
        queue, departed, dropped = self.make(scheduler, capacity=2)
        # One in service + two buffered; the fourth arrival is dropped.
        for seq in range(4):
            queue.arrive(pkt(seq))
        assert [p.sequence for p in dropped] == [3]
        scheduler.run_until(10.0)
        assert [p.sequence for p in departed] == [0, 1, 2]

    def test_stats_counters(self):
        scheduler = EventScheduler()
        queue, _, _ = self.make(scheduler, capacity=1)
        for seq in range(5):
            queue.arrive(pkt(seq))
        scheduler.run_until(10.0)
        assert queue.stats.enqueued == 2
        assert queue.stats.dropped == 3
        assert queue.stats.departed == 2
        assert queue.stats.drop_rate == pytest.approx(0.6)

    def test_zero_capacity_allows_only_in_service(self):
        scheduler = EventScheduler()
        queue, departed, dropped = self.make(scheduler, capacity=0)
        queue.arrive(pkt(0))
        queue.arrive(pkt(1))
        scheduler.run_until(10.0)
        assert len(departed) == 1
        assert len(dropped) == 1

    def test_occupancy_sampling(self):
        scheduler = EventScheduler()
        samples_queue = BottleneckQueue(
            scheduler, bandwidth=10.0, capacity=5,
            on_departure=lambda p: None, on_drop=lambda p: None,
            sample_occupancy=True,
        )
        samples_queue.arrive(pkt(0))
        samples_queue.arrive(pkt(1))
        scheduler.run_until(1.0)
        assert len(samples_queue.stats.occupancy_samples) >= 2

    def test_validation(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            BottleneckQueue(scheduler, bandwidth=0.0, capacity=1,
                            on_departure=lambda p: None, on_drop=lambda p: None)
        with pytest.raises(ValueError):
            BottleneckQueue(scheduler, bandwidth=1.0, capacity=-1,
                            on_departure=lambda p: None, on_drop=lambda p: None)


class TestPacketValidation:
    @pytest.mark.parametrize("kwargs", [
        {"flow_id": -1, "sequence": 0, "sent_at": 0.0, "round_index": 0},
        {"flow_id": 0, "sequence": -1, "sent_at": 0.0, "round_index": 0},
        {"flow_id": 0, "sequence": 0, "sent_at": -1.0, "round_index": 0},
        {"flow_id": 0, "sequence": 0, "sent_at": 0.0, "round_index": -1},
    ])
    def test_rejects_negative_fields(self, kwargs):
        with pytest.raises(ValueError):
            Packet(**kwargs)
