"""Event scheduler and droptail queue (repro.packetsim.engine / .queue)."""

import pytest

from repro.packetsim.engine import EventKind, EventScheduler
from repro.packetsim.packet import Packet, PacketPool
from repro.packetsim.queue import BottleneckQueue, OccupancyRing


class TestScheduler:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(2.0, lambda: order.append("late"))
        scheduler.schedule(1.0, lambda: order.append("early"))
        scheduler.run_until(5.0)
        assert order == ["early", "late"]

    def test_ties_break_by_insertion_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(1.0, lambda: order.append("first"))
        scheduler.schedule(1.0, lambda: order.append("second"))
        scheduler.run_until(2.0)
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(3.5, lambda: seen.append(scheduler.now))
        scheduler.run_until(10.0)
        assert seen == [3.5]
        assert scheduler.now == 10.0

    def test_events_beyond_horizon_stay_pending(self):
        scheduler = EventScheduler()
        scheduler.schedule(5.0, lambda: None)
        scheduler.run_until(1.0)
        assert scheduler.pending() == 1

    def test_cascading_events(self):
        scheduler = EventScheduler()
        fired = []

        def first():
            fired.append("first")
            scheduler.schedule(1.0, lambda: fired.append("second"))

        scheduler.schedule(1.0, first)
        scheduler.run_until(3.0)
        assert fired == ["first", "second"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run_until(2.0)
        with pytest.raises(ValueError):
            scheduler.schedule_at(1.5, lambda: None)

    def test_run_until_backwards_rejected(self):
        scheduler = EventScheduler()
        scheduler.run_until(5.0)
        with pytest.raises(ValueError):
            scheduler.run_until(1.0)

    def test_event_storm_guard(self):
        scheduler = EventScheduler()

        def rearm():
            scheduler.schedule(0.0, rearm)

        scheduler.schedule(0.0, rearm)
        with pytest.raises(RuntimeError, match="max_events"):
            scheduler.run_until(1.0, max_events=100)

    def test_processed_counter(self):
        scheduler = EventScheduler()
        for _ in range(5):
            scheduler.schedule(0.5, lambda: None)
        scheduler.run_until(1.0)
        assert scheduler.processed_events == 5


class TestRunUntilContract:
    """The documented ``run_until`` contract and its regression cases."""

    def test_clock_reaches_end_time_with_events_still_pending(self):
        # The contract: _now advances to end_time even though an event
        # remains queued beyond the horizon; a later run_until resumes it.
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(5.0, lambda: fired.append(scheduler.now))
        scheduler.run_until(1.0)
        assert scheduler.now == 1.0
        assert scheduler.pending() == 1
        scheduler.run_until(10.0)
        assert fired == [5.0]
        assert scheduler.now == 10.0

    def test_reentrant_run_until_raises(self):
        scheduler = EventScheduler()
        caught = []

        def reenter():
            try:
                scheduler.run_until(100.0)
            except RuntimeError as exc:
                caught.append(str(exc))

        scheduler.schedule(1.0, reenter)
        scheduler.run_until(2.0)
        assert caught and "re-entrant" in caught[0]

    def test_scheduler_usable_after_reentrancy_error(self):
        scheduler = EventScheduler()

        def reenter():
            scheduler.run_until(100.0)

        scheduler.schedule(1.0, reenter)
        with pytest.raises(RuntimeError):
            scheduler.run_until(2.0)
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(True))
        scheduler.run_until(5.0)
        assert fired == [True]


class TestRails:
    def test_rail_events_interleave_with_heap_in_time_order(self):
        scheduler = EventScheduler()
        rail = scheduler.rail(2.0)
        order = []
        scheduler.schedule(1.0, lambda: order.append("heap-1"))
        rail.push(int(EventKind.CALLBACK), lambda: order.append("rail-2"))
        scheduler.schedule(3.0, lambda: order.append("heap-3"))
        scheduler.run_until(5.0)
        assert order == ["heap-1", "rail-2", "heap-3"]

    def test_equal_time_ties_break_by_push_order_across_structures(self):
        scheduler = EventScheduler()
        rail = scheduler.rail(1.0)
        order = []
        scheduler.schedule(1.0, lambda: order.append("heap-first"))
        rail.push(int(EventKind.CALLBACK), lambda: order.append("rail-second"))
        scheduler.schedule(1.0, lambda: order.append("heap-third"))
        scheduler.run_until(2.0)
        assert order == ["heap-first", "rail-second", "heap-third"]

    def test_batch_preempted_by_push_to_other_rail(self):
        # Regression for the batching guard: while a rail batch drains, a
        # handler schedules an earlier event on a DIFFERENT rail; the
        # batch must stop so the new event runs in (time, seq) order.
        scheduler = EventScheduler()
        slow = scheduler.rail(10.0)
        fast = scheduler.rail(0.5)
        order = []

        def first_slow():
            order.append("slow-a")
            # now=10; lands at 10.5, before the batch-mate at time 11.
            fast.push(int(EventKind.CALLBACK), lambda: order.append("fast"))

        slow.push(int(EventKind.CALLBACK), first_slow)  # fires at 10
        scheduler.schedule(1.0, lambda: slow.push(
            int(EventKind.CALLBACK), lambda: order.append("slow-b")
        ))  # second slow event fires at 11
        scheduler.run_until(20.0)
        assert order == ["slow-a", "fast", "slow-b"]

    def test_batch_preempted_by_push_to_heap(self):
        scheduler = EventScheduler()
        slow = scheduler.rail(10.0)
        order = []

        def first_slow():
            order.append("slow-a")
            scheduler.schedule(0.5, lambda: order.append("heap"))

        slow.push(int(EventKind.CALLBACK), first_slow)
        scheduler.schedule(1.0, lambda: slow.push(
            int(EventKind.CALLBACK), lambda: order.append("slow-b")
        ))
        scheduler.run_until(20.0)
        assert order == ["slow-a", "heap", "slow-b"]

    def test_rail_rejects_invalid_delay(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            scheduler.rail(-1.0)
        with pytest.raises(ValueError):
            scheduler.rail(float("inf"))

    def test_pending_counts_rail_events(self):
        scheduler = EventScheduler()
        rail = scheduler.rail(1.0)
        rail.push(int(EventKind.CALLBACK), lambda: None)
        scheduler.schedule(1.0, lambda: None)
        assert scheduler.pending() == 2


class TestPacketPool:
    def test_acquire_recycles_released_packets(self):
        pool = PacketPool()
        first = pool.acquire(0, 0, 0.0, 0)
        pool.release(first)
        second = pool.acquire(1, 7, 3.0, 2)
        assert second is first
        assert (second.flow_id, second.sequence, second.sent_at,
                second.round_index) == (1, 7, 3.0, 2)

    def test_pool_grows_only_when_empty(self):
        pool = PacketPool()
        a = pool.acquire(0, 0, 0.0, 0)
        b = pool.acquire(0, 1, 0.0, 0)
        assert a is not b
        pool.release(a)
        pool.release(b)
        assert len(pool) == 2


class TestOccupancyRing:
    def test_under_budget_keeps_everything(self):
        ring = OccupancyRing(budget=16)
        for i in range(10):
            ring.push(float(i), i)
        assert ring.samples() == [(float(i), i) for i in range(10)]

    def test_over_budget_decimates_and_stays_bounded(self):
        ring = OccupancyRing(budget=16)
        for i in range(10_000):
            ring.push(float(i), i)
        assert 8 <= len(ring) <= 16
        samples = ring.samples()
        # Evenly thinned: retained observation indices step by the stride.
        times = [t for t, _ in samples]
        assert times == sorted(times)
        strides = {round(b - a) for a, b in zip(times, times[1:])}
        assert len(strides) == 1
        assert ring.stride >= 10_000 // 16

    def test_decimation_is_deterministic(self):
        def run():
            ring = OccupancyRing(budget=8)
            for i in range(1000):
                ring.push(i * 0.25, i % 7)
            return ring.samples()

        assert run() == run()

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            OccupancyRing(budget=1)

    def test_long_sampled_run_respects_budget(self):
        scheduler = EventScheduler()
        queue = BottleneckQueue(
            scheduler, bandwidth=1000.0, capacity=5,
            on_departure=lambda p: None, on_drop=lambda p: None,
            sample_occupancy=True, sample_budget=64,
        )
        for burst in range(200):
            for seq in range(3):
                queue.arrive(Packet(0, burst * 3 + seq, scheduler.now, 0))
            scheduler.run_until(scheduler.now + 0.1)
        assert len(queue.stats.occupancy_samples) <= 64
        assert queue.stats.occupancy_ring.seen > 64


def pkt(seq: int, flow: int = 0) -> Packet:
    return Packet(flow_id=flow, sequence=seq, sent_at=0.0, round_index=0)


class TestQueue:
    def make(self, scheduler, capacity=2, bandwidth=10.0):
        departed, dropped = [], []
        queue = BottleneckQueue(
            scheduler,
            bandwidth=bandwidth,
            capacity=capacity,
            on_departure=departed.append,
            on_drop=dropped.append,
        )
        return queue, departed, dropped

    def test_packets_depart_at_service_rate(self):
        scheduler = EventScheduler()
        queue, departed, _ = self.make(scheduler, bandwidth=10.0)
        queue.arrive(pkt(0))
        queue.arrive(pkt(1))
        scheduler.run_until(0.15)
        assert [p.sequence for p in departed] == [0]
        scheduler.run_until(0.25)
        assert [p.sequence for p in departed] == [0, 1]

    def test_fifo_order(self):
        scheduler = EventScheduler()
        queue, departed, _ = self.make(scheduler, capacity=10)
        for seq in range(5):
            queue.arrive(pkt(seq))
        scheduler.run_until(10.0)
        assert [p.sequence for p in departed] == list(range(5))

    def test_droptail_when_full(self):
        scheduler = EventScheduler()
        queue, departed, dropped = self.make(scheduler, capacity=2)
        # One in service + two buffered; the fourth arrival is dropped.
        for seq in range(4):
            queue.arrive(pkt(seq))
        assert [p.sequence for p in dropped] == [3]
        scheduler.run_until(10.0)
        assert [p.sequence for p in departed] == [0, 1, 2]

    def test_stats_counters(self):
        scheduler = EventScheduler()
        queue, _, _ = self.make(scheduler, capacity=1)
        for seq in range(5):
            queue.arrive(pkt(seq))
        scheduler.run_until(10.0)
        assert queue.stats.enqueued == 2
        assert queue.stats.dropped == 3
        assert queue.stats.departed == 2
        assert queue.stats.drop_rate == pytest.approx(0.6)

    def test_zero_capacity_allows_only_in_service(self):
        scheduler = EventScheduler()
        queue, departed, dropped = self.make(scheduler, capacity=0)
        queue.arrive(pkt(0))
        queue.arrive(pkt(1))
        scheduler.run_until(10.0)
        assert len(departed) == 1
        assert len(dropped) == 1

    def test_occupancy_sampling(self):
        scheduler = EventScheduler()
        samples_queue = BottleneckQueue(
            scheduler, bandwidth=10.0, capacity=5,
            on_departure=lambda p: None, on_drop=lambda p: None,
            sample_occupancy=True,
        )
        samples_queue.arrive(pkt(0))
        samples_queue.arrive(pkt(1))
        scheduler.run_until(1.0)
        assert len(samples_queue.stats.occupancy_samples) >= 2

    def test_validation(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            BottleneckQueue(scheduler, bandwidth=0.0, capacity=1,
                            on_departure=lambda p: None, on_drop=lambda p: None)
        with pytest.raises(ValueError):
            BottleneckQueue(scheduler, bandwidth=1.0, capacity=-1,
                            on_departure=lambda p: None, on_drop=lambda p: None)


class TestPacketValidation:
    @pytest.mark.parametrize("kwargs", [
        {"flow_id": -1, "sequence": 0, "sent_at": 0.0, "round_index": 0},
        {"flow_id": 0, "sequence": -1, "sent_at": 0.0, "round_index": 0},
        {"flow_id": 0, "sequence": 0, "sent_at": -1.0, "round_index": 0},
        {"flow_id": 0, "sequence": 0, "sent_at": 0.0, "round_index": -1},
    ])
    def test_rejects_negative_fields(self, kwargs):
        with pytest.raises(ValueError):
            Packet(**kwargs)
