"""ACK-clocked flows and scenarios (repro.packetsim.host / .scenario)."""

import math

import pytest

from repro.model.link import Link
from repro.packetsim.host import Flow, FlowStats
from repro.packetsim.engine import EventScheduler
from repro.packetsim.scenario import PacketScenario, run_scenario
from repro.protocols import presets
from repro.protocols.aimd import AIMD
from repro.protocols.slow_start import SlowStartWrapper


class TestFlowStats:
    def test_delivered_between(self):
        stats = FlowStats(ack_times=[0.1, 0.5, 0.9, 1.5])
        assert stats.delivered_between(0.0, 1.0) == 3
        assert stats.delivered_between(1.0, 2.0) == 1

    def test_throughput(self):
        stats = FlowStats(ack_times=[0.1, 0.2, 0.3, 0.4])
        assert stats.throughput_mss_per_s(0.0, 0.5) == pytest.approx(8.0)

    def test_loss_rate(self):
        stats = FlowStats(packets_sent=10, packets_lost=2)
        assert stats.loss_rate == pytest.approx(0.2)

    def test_loss_rate_between_windows(self):
        stats = FlowStats(
            ack_times=[0.1, 0.6], loss_times=[0.7],
        )
        assert stats.loss_rate_between(0.5, 1.0) == pytest.approx(0.5)
        assert stats.loss_rate_between(0.0, 0.5) == 0.0

    def test_mean_rtt_between(self):
        stats = FlowStats(ack_times=[0.1, 0.6], rtt_samples=[0.04, 0.08])
        assert stats.mean_rtt_between(0.0, 1.0) == pytest.approx(0.06)
        assert math.isnan(stats.mean_rtt_between(2.0, 3.0))

    def test_window_validation(self):
        with pytest.raises(ValueError):
            FlowStats().delivered_between(1.0, 0.5)
        with pytest.raises(ValueError):
            FlowStats().throughput_mss_per_s(1.0, 1.0)


class TestFlowValidation:
    def test_initial_window_below_floor_rejected(self):
        with pytest.raises(ValueError):
            Flow(0, AIMD(1, 0.5), EventScheduler(), lambda p: None,
                 initial_window=0.5, min_window=1.0)

    def test_negative_start_time_rejected(self):
        with pytest.raises(ValueError):
            Flow(0, AIMD(1, 0.5), EventScheduler(), lambda p: None,
                 start_time=-1.0)


class TestScenario:
    def test_single_reno_fills_link(self):
        scenario = PacketScenario.from_mbps(
            10, 42, 50, [presets.reno()], duration=12.0
        )
        result = run_scenario(scenario)
        assert result.utilization() > 0.7

    def test_two_reno_flows_share_fairly(self):
        scenario = PacketScenario.from_mbps(
            10, 42, 50, [presets.reno(), presets.reno()], duration=15.0
        )
        result = run_scenario(scenario)
        rates = result.throughputs()
        assert min(rates) / max(rates) > 0.5

    def test_rtt_inflation_bounded_by_buffer(self):
        scenario = PacketScenario.from_mbps(
            10, 42, 50, [presets.reno()], duration=12.0
        )
        result = run_scenario(scenario)
        rtt = result.mean_rtts()[0]
        base = scenario.link.base_rtt
        max_rtt = base + 51 / scenario.link.bandwidth  # buffer + in-service
        assert base <= rtt <= max_rtt + base

    def test_deterministic(self):
        def run_once():
            scenario = PacketScenario.from_mbps(
                10, 42, 20, [presets.reno(), presets.cubic()], duration=8.0,
                seed=3,
            )
            return run_scenario(scenario).throughputs()

        assert run_once() == run_once()

    def test_random_loss_reduces_reno_throughput(self):
        clean = run_scenario(
            PacketScenario.from_mbps(10, 42, 50, [presets.reno()], duration=10.0)
        )
        lossy = run_scenario(
            PacketScenario.from_mbps(
                10, 42, 50, [presets.reno()], duration=10.0,
                random_loss_rate=0.02,
            )
        )
        assert lossy.throughputs()[0] < 0.5 * clean.throughputs()[0]

    def test_staggered_start(self):
        scenario = PacketScenario.from_mbps(
            10, 42, 50, [presets.reno(), presets.reno()], duration=10.0,
            start_times=[0.0, 5.0],
        )
        result = run_scenario(scenario)
        # The late flow delivered strictly less.
        assert result.flows[1].packets_acked < result.flows[0].packets_acked
        first_late_ack = min(result.flows[1].ack_times)
        assert first_late_ack >= 5.0

    def test_slow_start_accelerates_ramp(self):
        plain = run_scenario(
            PacketScenario.from_mbps(20, 42, 100, [presets.scalable_mimd()],
                                     duration=6.0)
        )
        ramped = run_scenario(
            PacketScenario.from_mbps(
                20, 42, 100, [SlowStartWrapper(presets.scalable_mimd())],
                duration=6.0,
            )
        )
        assert ramped.throughputs()[0] > 2 * plain.throughputs()[0]

    def test_share_ratio(self):
        scenario = PacketScenario.from_mbps(
            10, 42, 50, [presets.reno(), presets.reno()], duration=10.0
        )
        result = run_scenario(scenario)
        ratio = result.share_ratio(0, 1)
        assert ratio == pytest.approx(
            result.throughputs()[0] / result.throughputs()[1]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketScenario.from_mbps(10, 42, 50, [], duration=5.0)
        with pytest.raises(ValueError):
            PacketScenario.from_mbps(10, 42, 50, [presets.reno()], duration=0.0)
        with pytest.raises(ValueError):
            PacketScenario.from_mbps(
                10, 42, 50, [presets.reno()], random_loss_rate=1.0
            )
        with pytest.raises(ValueError):
            PacketScenario.from_mbps(
                10, 42, 50, [presets.reno()], start_times=[0.0, 1.0]
            )
        with pytest.raises(ValueError):
            PacketScenario(link=Link.infinite(), protocols=[presets.reno()])

    def test_measurement_window(self):
        scenario = PacketScenario.from_mbps(10, 42, 50, [presets.reno()],
                                            duration=10.0)
        result = run_scenario(scenario)
        assert result.measurement_window(0.25) == (7.5, 10.0)
        with pytest.raises(ValueError):
            result.measurement_window(0.0)

    def test_conservation(self):
        # Every sent packet is eventually acked, lost, or still in flight.
        scenario = PacketScenario.from_mbps(10, 42, 20, [presets.reno()],
                                            duration=10.0)
        result = run_scenario(scenario)
        flow = result.flows[0]
        in_flight = flow.packets_sent - flow.packets_acked - flow.packets_lost
        assert 0 <= in_flight <= 200
