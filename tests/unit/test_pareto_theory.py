"""Figure 1 surface and feasibility (repro.core.theory.pareto)."""

import pytest

from repro.core.theory.pareto import (
    Figure1Point,
    dominated_by_surface,
    figure1_surface,
    frontier_friendliness,
    is_feasible_point,
    is_frontier_point,
    surface_is_mutually_non_dominated,
)


class TestSurface:
    def test_default_grid_size(self):
        points = figure1_surface()
        assert len(points) == 16 * 19

    def test_custom_grid(self):
        points = figure1_surface(alphas=[1.0], betas=[0.5])
        assert len(points) == 1
        assert points[0].tcp_friendliness == pytest.approx(1.0)

    def test_surface_values_match_theorem2(self):
        for point in figure1_surface(alphas=[0.5, 2.0], betas=[0.3, 0.8]):
            assert point.tcp_friendliness == pytest.approx(
                frontier_friendliness(point.fast_utilization, point.efficiency)
            )

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            figure1_surface(alphas=[0.0], betas=[0.5])

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            figure1_surface(alphas=[1.0], betas=[1.5])

    def test_aimd_parameters_read_off_the_point(self):
        point = Figure1Point(2.0, 0.5, 0.5)
        assert point.aimd_parameters == (2.0, 0.5)


class TestFrontierProperty:
    def test_default_surface_is_mutually_non_dominated(self):
        # The defining Pareto property of Figure 1.
        assert surface_is_mutually_non_dominated(figure1_surface())

    def test_corrupted_surface_detected(self):
        points = figure1_surface(alphas=[1.0, 2.0], betas=[0.5])
        # Lower one point's friendliness below the surface: now dominated.
        bad = Figure1Point(1.0, 0.5, 0.1)
        assert not surface_is_mutually_non_dominated(points + [bad])

    def test_dominated_by_surface(self):
        surface = figure1_surface(alphas=[1.0], betas=[0.5])
        assert dominated_by_surface((0.9, 0.4, 0.5), surface)
        assert not dominated_by_surface((1.0, 0.5, 1.0), surface)


class TestFeasibility:
    def test_points_on_surface_are_feasible(self):
        assert is_feasible_point(1.0, 0.5, 1.0)

    def test_points_below_surface_are_feasible(self):
        assert is_feasible_point(1.0, 0.5, 0.2)

    def test_points_above_surface_are_infeasible(self):
        # Theorem 2: no protocol beats the cap.
        assert not is_feasible_point(1.0, 0.5, 1.5)

    def test_frontier_membership(self):
        assert is_frontier_point(1.0, 0.5, 1.0)
        assert not is_frontier_point(1.0, 0.5, 0.5)

    def test_negative_friendliness_rejected(self):
        with pytest.raises(ValueError):
            is_feasible_point(1.0, 0.5, -0.1)
