"""The content-addressed simulation cache (repro.perf.cache)."""

import os

import numpy as np
import pytest

from repro.model.dynamics import FluidSimulator, SimulationConfig
from repro.model.link import Link
from repro.model.random_loss import BernoulliLoss
from repro.perf.cache import (
    CACHE_ENV,
    TraceCache,
    active_cache,
    cache_enabled,
    configure_cache,
    deactivate_cache,
    default_cache_dir,
    simulation_key,
)
from repro.protocols.aimd import AIMD
from repro.protocols.pcc import PccLike
from repro.protocols.robust_aimd import RobustAIMD


@pytest.fixture(autouse=True)
def _clean_cache_state(monkeypatch):
    """Keep the process-global cache state from leaking between tests."""
    monkeypatch.delenv(CACHE_ENV, raising=False)
    deactivate_cache()
    yield
    deactivate_cache()


def _key(link, protocols, config, steps=100):
    n = len(protocols)
    initial = list(config.initial_windows or [1.0] * n)
    return simulation_key(link, protocols, config, initial, steps)


class TestSimulationKey:
    def test_stable_across_equal_inputs(self, emulab_link):
        cfg = SimulationConfig(initial_windows=[1.0, 2.0])
        k1 = _key(emulab_link, [AIMD(1, 0.5)] * 2, cfg)
        k2 = _key(emulab_link, [AIMD(1, 0.5)] * 2, cfg)
        assert k1 == k2
        assert len(k1) == 64  # sha256 hex

    def test_sensitive_to_every_input(self, emulab_link, big_link):
        cfg = SimulationConfig(initial_windows=[1.0, 2.0])
        base = _key(emulab_link, [AIMD(1, 0.5)] * 2, cfg)
        assert _key(big_link, [AIMD(1, 0.5)] * 2, cfg) != base
        assert _key(emulab_link, [AIMD(1, 0.6)] * 2, cfg) != base
        assert _key(emulab_link, [AIMD(1, 0.5)] * 2, cfg, steps=101) != base
        other = SimulationConfig(initial_windows=[1.0, 3.0])
        assert _key(emulab_link, [AIMD(1, 0.5)] * 2, other) != base
        lossy = SimulationConfig(
            initial_windows=[1.0, 2.0], loss_process=BernoulliLoss(0.01)
        )
        assert _key(emulab_link, [AIMD(1, 0.5)] * 2, lossy) != base

    def test_close_floats_do_not_collide(self, emulab_link):
        cfg = SimulationConfig(initial_windows=[1.0])
        tweaked = AIMD(1, 0.5 + 1e-16)
        if tweaked.b != 0.5:  # only meaningful if the floats really differ
            assert _key(emulab_link, [tweaked], cfg) != _key(
                emulab_link, [AIMD(1, 0.5)], cfg
            )

    def test_protocol_runtime_state_does_not_leak_into_key(self, emulab_link):
        from repro.model.sender import Observation

        cfg = SimulationConfig(initial_windows=[1.0, 1.0])
        fresh = PccLike()
        used = PccLike()
        window = 10.0
        for step in range(20):  # drive the stateful phase machine
            window = used.next_window(
                Observation(step=step, window=window, loss_rate=0.0,
                            rtt=1.0, min_rtt=1.0)
            )
        assert vars(used) != vars(fresh)  # state really did change
        key_fresh = _key(emulab_link, [fresh] * 2, cfg)
        assert key_fresh is not None  # stateful PccLike is still cacheable
        assert key_fresh == _key(emulab_link, [used] * 2, cfg)

    def test_allow_vectorized_is_not_part_of_the_key(self, emulab_link):
        fast = SimulationConfig(initial_windows=[1.0])
        slow = SimulationConfig(initial_windows=[1.0], allow_vectorized=False)
        assert _key(emulab_link, [AIMD(1, 0.5)], fast) == _key(
            emulab_link, [AIMD(1, 0.5)], slow
        )

    def test_unkeyable_input_is_uncacheable(self, emulab_link):
        class Weird:
            pass

        cfg = SimulationConfig(initial_windows=[1.0])
        assert (
            simulation_key(Weird(), [AIMD(1, 0.5)], cfg, [1.0], 100) is None
        )


class TestTraceCache:
    def test_round_trip_is_bit_identical(self, tmp_path, emulab_link):
        cache = TraceCache(tmp_path)
        sim = FluidSimulator(
            emulab_link, [AIMD(1, 0.5)] * 3,
            SimulationConfig(initial_windows=[1.0, 2.0, 3.0]),
        )
        trace = sim.run(400)
        key = "ab" + "0" * 62
        cache.put(key, trace)
        loaded = cache.get(key)
        for name in ("windows", "observed_loss", "congestion_loss", "rtts",
                     "capacities", "pipe_limits", "base_rtts"):
            a = getattr(trace, name)
            b = getattr(loaded, name)
            assert np.array_equal(a.view(np.uint64), b.view(np.uint64)), name

    def test_hit_and_miss_counters(self, tmp_path, emulab_link):
        cache = TraceCache(tmp_path)
        key = "cd" + "1" * 62
        assert cache.get(key) is None
        assert (cache.hits, cache.misses) == (0, 1)
        trace = FluidSimulator(emulab_link, [AIMD(1, 0.5)]).run(50)
        cache.put(key, trace)
        assert cache.get(key) is not None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_corrupt_entry_is_dropped_as_miss(self, tmp_path, emulab_link):
        cache = TraceCache(tmp_path)
        key = "ef" + "2" * 62
        trace = FluidSimulator(emulab_link, [AIMD(1, 0.5)]).run(50)
        path = cache.put(key, trace)
        path.write_bytes(b"not an npz file")
        assert cache.get(key) is None
        assert not path.exists()

    def test_clear_and_stats(self, tmp_path, emulab_link):
        cache = TraceCache(tmp_path)
        trace = FluidSimulator(emulab_link, [AIMD(1, 0.5)]).run(50)
        cache.put("11" + "a" * 62, trace)
        cache.put("22" + "b" * 62, trace)
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_default_directory_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_unwritable_directory_is_best_effort(self, tmp_path, emulab_link):
        # A bogus cache location (here: a regular file) must not kill the
        # simulation whose trace was being archived.
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("in the way")
        cache = TraceCache(bogus)
        trace = FluidSimulator(emulab_link, [AIMD(1, 0.5)]).run(50)
        assert cache.put("33" + "c" * 62, trace) is None
        assert cache.get("33" + "c" * 62) is None
        assert cache.stats()["entries"] == 0
        assert cache.clear() == 0


class TestActivation:
    def test_inactive_by_default(self):
        assert active_cache() is None

    def test_configure_and_deactivate(self, tmp_path):
        cache = configure_cache(tmp_path)
        assert active_cache() is cache
        assert os.environ[CACHE_ENV] == str(tmp_path)
        deactivate_cache()
        assert active_cache() is None
        assert CACHE_ENV not in os.environ

    def test_env_variable_activates(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        cache = active_cache()
        assert cache is not None
        assert cache.directory == tmp_path

    def test_cache_enabled_scopes_activation(self, tmp_path):
        with cache_enabled(tmp_path) as cache:
            assert active_cache() is cache
            assert os.environ[CACHE_ENV] == str(tmp_path)
        assert active_cache() is None
        assert CACHE_ENV not in os.environ


class TestSimulatorIntegration:
    def test_second_run_hits_and_matches_bitwise(self, tmp_path, emulab_link):
        with cache_enabled(tmp_path) as cache:
            cfg = SimulationConfig(initial_windows=[1.0, 5.0])
            first = FluidSimulator(
                emulab_link, [RobustAIMD(1, 0.8, 0.01)] * 2, cfg
            ).run(400)
            second = FluidSimulator(
                emulab_link, [RobustAIMD(1, 0.8, 0.01)] * 2, cfg
            ).run(400)
            assert cache.hits == 1
            assert cache.misses == 1
            assert np.array_equal(
                first.windows.view(np.uint64), second.windows.view(np.uint64)
            )

    def test_cached_result_matches_uncached(self, tmp_path, emulab_link):
        cfg = SimulationConfig(initial_windows=[1.0, 2.0])
        uncached = FluidSimulator(emulab_link, [AIMD(1, 0.5)] * 2, cfg).run(300)
        with cache_enabled(tmp_path):
            FluidSimulator(emulab_link, [AIMD(1, 0.5)] * 2, cfg).run(300)
            cached = FluidSimulator(emulab_link, [AIMD(1, 0.5)] * 2, cfg).run(300)
        assert np.array_equal(
            uncached.windows.view(np.uint64), cached.windows.view(np.uint64)
        )

    def test_different_steps_do_not_collide(self, tmp_path, emulab_link):
        with cache_enabled(tmp_path):
            cfg = SimulationConfig(initial_windows=[1.0])
            long = FluidSimulator(emulab_link, [AIMD(1, 0.5)], cfg).run(200)
            short = FluidSimulator(emulab_link, [AIMD(1, 0.5)], cfg).run(100)
            assert long.windows.shape == (200, 1)
            assert short.windows.shape == (100, 1)
