"""The unified store (repro.perf.store): keys, round-trips, accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import ScenarioSpec, run_spec
from repro.model.link import Link
from repro.perf.cache import TraceCache, cache_enabled
from repro.perf.store import (
    classify_entry,
    load_unified_trace,
    stats_by_kind,
    store_unified_trace,
    unified_key,
)
from repro.protocols.aimd import AIMD


@pytest.fixture
def spec() -> ScenarioSpec:
    return ScenarioSpec(
        protocols=[AIMD(1, 0.5)] * 2, link=Link.from_mbps(20, 42, 100),
        steps=48,
    )


class TestUnifiedKey:
    def test_deterministic_and_backend_scoped(self, spec):
        a = unified_key("fluid", spec)
        b = unified_key("fluid", spec)
        assert a == b
        assert isinstance(a, str) and len(a) == 64
        assert unified_key("packet", spec) != a

    def test_key_sees_every_dynamics_knob(self, spec):
        base = unified_key("fluid", spec)
        tweaked = ScenarioSpec(
            protocols=spec.protocols, link=spec.link, steps=48, seed=7
        )
        assert unified_key("fluid", tweaked) != base

    def test_uncanonicalizable_spec_is_uncacheable(self, spec):
        spec.topology = object()  # no fields, no clone: cannot be keyed
        assert unified_key("network", spec) is None


class TestStoreRoundTrip:
    @pytest.mark.parametrize("backend", ["fluid", "meanfield", "network",
                                         "packet"])
    def test_round_trip_is_bit_identical(self, tmp_path, spec, backend):
        run_input = spec
        if backend == "packet":
            run_input = ScenarioSpec(
                protocols=spec.protocols, link=spec.link, duration=4.0, seed=1
            )
        trace = run_spec(run_input, backend, use_cache=False)
        cache = TraceCache(tmp_path)
        key = unified_key(backend, run_input)
        store_unified_trace(cache, key, trace)
        loaded = load_unified_trace(cache, key)
        assert loaded is not None
        assert loaded.backend == backend
        for name in ("windows", "observed_loss", "congestion_loss", "rtts",
                     "capacities", "pipe_limits", "base_rtts", "flow_rtts"):
            assert np.array_equal(
                getattr(loaded, name), getattr(trace, name), equal_nan=True
            ), name
        if trace.times is None:
            assert loaded.times is None
        else:
            assert np.array_equal(loaded.times, trace.times)

    def test_miss_returns_none(self, tmp_path):
        cache = TraceCache(tmp_path)
        assert load_unified_trace(cache, "0" * 64) is None


class TestAccounting:
    def test_classify_and_stats_by_kind(self, tmp_path, spec):
        with cache_enabled(tmp_path) as cache:
            run_spec(spec, "fluid")
            run_spec(
                ScenarioSpec(protocols=spec.protocols, link=spec.link,
                             duration=4.0, seed=1),
                "packet",
            )
            breakdown = stats_by_kind(cache)
            kinds = {
                classify_entry(path) for path in cache.entries()
            }
        # run_spec stores unified entries; the engines warm their native
        # caches alongside, all in the same directory.
        assert {"unified:fluid", "unified:packet", "fluid", "packet"} <= kinds
        for kind in ("unified:fluid", "unified:packet"):
            assert breakdown[kind]["entries"] == 1
            assert breakdown[kind]["bytes"] > 0
        assert sum(b["entries"] for b in breakdown.values()) == len(kinds)
        assert list(breakdown) == sorted(breakdown)

    def test_unknown_entry_kind(self, tmp_path):
        cache = TraceCache(tmp_path)
        bogus = tmp_path / "ab" / ("ab" + "0" * 62 + ".npz")
        bogus.parent.mkdir(parents=True, exist_ok=True)
        bogus.write_bytes(b"not an npz archive")
        assert classify_entry(bogus) == "unknown"
        assert stats_by_kind(cache).get("unknown", {}).get("entries") == 1


class TestPruneCache:
    def _fill(self, tmp_path, count=4):
        import os
        import time

        from repro.perf.store import store_unified_trace as store

        cache = TraceCache(tmp_path)
        keys = []
        for i in range(count):
            spec_i = ScenarioSpec(
                protocols=[AIMD(1 + i, 0.5)] * 2,
                link=Link.from_mbps(20, 42, 100), steps=32,
            )
            trace = run_spec(spec_i, "fluid", use_cache=False)
            key = unified_key("fluid", spec_i)
            store(cache, key, trace)
            # Distinct mtimes so eviction order (oldest first) is observable.
            stamp = time.time() - (count - i) * 100
            path = cache._path(key)
            os.utime(path, (stamp, stamp))
            keys.append(key)
        return cache, keys

    def test_prunes_oldest_first_and_reports_reclaimed(self, tmp_path):
        from repro.perf.store import prune_cache

        cache, keys = self._fill(tmp_path)
        sizes = [path.stat().st_size for path in cache.entries()]
        keep = sum(sizes) - min(sizes)  # forces out at least one entry
        report = prune_cache(cache, max_bytes=keep)
        assert report["removed"] >= 1
        assert report["reclaimed_bytes"] > 0
        assert report["remaining_bytes"] <= keep
        assert report["remaining_entries"] == len(list(cache.entries()))
        # The oldest entry went; the newest survived.
        assert load_unified_trace(cache, keys[0]) is None
        assert load_unified_trace(cache, keys[-1]) is not None

    def test_zero_cap_empties_the_store(self, tmp_path):
        from repro.perf.store import prune_cache

        cache, _ = self._fill(tmp_path, count=2)
        report = prune_cache(cache, max_bytes=0)
        assert report["remaining_entries"] == 0
        assert list(cache.entries()) == []

    def test_dry_run_reports_the_same_plan_without_deleting(self, tmp_path):
        from repro.perf.store import prune_cache

        cache, keys = self._fill(tmp_path)
        sizes = [path.stat().st_size for path in cache.entries()]
        keep = sum(sizes) - min(sizes)
        rehearsal = prune_cache(cache, max_bytes=keep, dry_run=True)
        assert rehearsal["removed"] >= 1
        assert rehearsal["reclaimed_bytes"] > 0
        # Nothing was actually unlinked: every entry still loads.
        assert len(list(cache.entries())) == len(keys)
        for key in keys:
            assert load_unified_trace(cache, key) is not None
        # A real prune with the same cap matches the rehearsal's report.
        assert prune_cache(cache, max_bytes=keep) == rehearsal
        assert rehearsal["remaining_entries"] == len(list(cache.entries()))

    def test_no_cap_is_a_noop(self, tmp_path, monkeypatch):
        from repro.perf.store import CACHE_MAX_MB_ENV, prune_cache

        monkeypatch.delenv(CACHE_MAX_MB_ENV, raising=False)
        cache, _ = self._fill(tmp_path, count=2)
        before = len(list(cache.entries()))
        report = prune_cache(cache)
        assert report["removed"] == 0
        assert len(list(cache.entries())) == before

    def test_env_cap_applies_by_default(self, tmp_path, monkeypatch):
        from repro.perf.store import CACHE_MAX_MB_ENV, prune_cache

        cache, _ = self._fill(tmp_path, count=2)
        monkeypatch.setenv(CACHE_MAX_MB_ENV, "0")
        report = prune_cache(cache)
        assert report["remaining_entries"] == 0

    def test_size_cap_parsing(self, monkeypatch):
        from repro.perf.store import CACHE_MAX_MB_ENV, size_cap_bytes

        monkeypatch.setattr("repro.perf.store._warned_cap_value", None)
        monkeypatch.setenv(CACHE_MAX_MB_ENV, "2")
        assert size_cap_bytes() == 2 * 1024 * 1024
        monkeypatch.setenv(CACHE_MAX_MB_ENV, "not-a-number")
        with pytest.warns(RuntimeWarning, match="not a number"):
            assert size_cap_bytes() is None
        monkeypatch.setenv(CACHE_MAX_MB_ENV, "-1")
        with pytest.warns(RuntimeWarning, match="negative"):
            assert size_cap_bytes() is None
        monkeypatch.delenv(CACHE_MAX_MB_ENV)
        assert size_cap_bytes() is None


class TestExtractBatchTrace:
    def test_extracted_row_round_trips_through_the_cache(self, tmp_path):
        from repro.backends import run_specs_batched
        from repro.perf.store import extract_batch_trace  # noqa: F401 (API)

        specs = [
            ScenarioSpec(protocols=[AIMD(1 + i, 0.5)] * 2,
                         link=Link.from_mbps(20, 42, 100), steps=32)
            for i in range(3)
        ]
        with cache_enabled(tmp_path) as cache:
            batched = run_specs_batched(specs)
            assert cache.stats()["entries"] >= len(specs)
            # Warm rerun: serial run_spec reads the batched runs' entries.
            for spec_i, trace in zip(specs, batched):
                again = run_spec(spec_i, "fluid")
                for name in ("windows", "observed_loss", "congestion_loss",
                             "rtts", "capacities", "pipe_limits", "base_rtts",
                             "flow_rtts"):
                    a = np.ascontiguousarray(getattr(trace, name))
                    b = np.ascontiguousarray(getattr(again, name))
                    assert np.array_equal(
                        a.view(np.uint64), b.view(np.uint64)
                    ), name
