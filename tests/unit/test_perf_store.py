"""The unified store (repro.perf.store): keys, round-trips, accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import ScenarioSpec, run_spec
from repro.model.link import Link
from repro.perf.cache import TraceCache, cache_enabled
from repro.perf.store import (
    classify_entry,
    load_unified_trace,
    stats_by_kind,
    store_unified_trace,
    unified_key,
)
from repro.protocols.aimd import AIMD


@pytest.fixture
def spec() -> ScenarioSpec:
    return ScenarioSpec(
        protocols=[AIMD(1, 0.5)] * 2, link=Link.from_mbps(20, 42, 100),
        steps=48,
    )


class TestUnifiedKey:
    def test_deterministic_and_backend_scoped(self, spec):
        a = unified_key("fluid", spec)
        b = unified_key("fluid", spec)
        assert a == b
        assert isinstance(a, str) and len(a) == 64
        assert unified_key("packet", spec) != a

    def test_key_sees_every_dynamics_knob(self, spec):
        base = unified_key("fluid", spec)
        tweaked = ScenarioSpec(
            protocols=spec.protocols, link=spec.link, steps=48, seed=7
        )
        assert unified_key("fluid", tweaked) != base

    def test_uncanonicalizable_spec_is_uncacheable(self, spec):
        spec.topology = object()  # no fields, no clone: cannot be keyed
        assert unified_key("network", spec) is None


class TestStoreRoundTrip:
    @pytest.mark.parametrize("backend", ["fluid", "network", "packet"])
    def test_round_trip_is_bit_identical(self, tmp_path, spec, backend):
        run_input = spec
        if backend == "packet":
            run_input = ScenarioSpec(
                protocols=spec.protocols, link=spec.link, duration=4.0, seed=1
            )
        trace = run_spec(run_input, backend, use_cache=False)
        cache = TraceCache(tmp_path)
        key = unified_key(backend, run_input)
        store_unified_trace(cache, key, trace)
        loaded = load_unified_trace(cache, key)
        assert loaded is not None
        assert loaded.backend == backend
        for name in ("windows", "observed_loss", "congestion_loss", "rtts",
                     "capacities", "pipe_limits", "base_rtts", "flow_rtts"):
            assert np.array_equal(
                getattr(loaded, name), getattr(trace, name), equal_nan=True
            ), name
        if trace.times is None:
            assert loaded.times is None
        else:
            assert np.array_equal(loaded.times, trace.times)

    def test_miss_returns_none(self, tmp_path):
        cache = TraceCache(tmp_path)
        assert load_unified_trace(cache, "0" * 64) is None


class TestAccounting:
    def test_classify_and_stats_by_kind(self, tmp_path, spec):
        with cache_enabled(tmp_path) as cache:
            run_spec(spec, "fluid")
            run_spec(
                ScenarioSpec(protocols=spec.protocols, link=spec.link,
                             duration=4.0, seed=1),
                "packet",
            )
            breakdown = stats_by_kind(cache)
            kinds = {
                classify_entry(path) for path in cache.entries()
            }
        # run_spec stores unified entries; the engines warm their native
        # caches alongside, all in the same directory.
        assert {"unified:fluid", "unified:packet", "fluid", "packet"} <= kinds
        for kind in ("unified:fluid", "unified:packet"):
            assert breakdown[kind]["entries"] == 1
            assert breakdown[kind]["bytes"] > 0
        assert sum(b["entries"] for b in breakdown.values()) == len(kinds)
        assert list(breakdown) == sorted(breakdown)

    def test_unknown_entry_kind(self, tmp_path):
        cache = TraceCache(tmp_path)
        bogus = tmp_path / "ab" / ("ab" + "0" * 62 + ".npz")
        bogus.parent.mkdir(parents=True, exist_ok=True)
        bogus.write_bytes(b"not an npz archive")
        assert classify_entry(bogus) == "unknown"
        assert stats_by_kind(cache).get("unknown", {}).get("entries") == 1
