"""The wall-time accounting registry (repro.perf.timing)."""

import time

import pytest

from repro.perf.timing import TimingRegistry, TimingStat


class TestTimingStat:
    def test_accumulates(self):
        stat = TimingStat()
        stat.add(1.0)
        stat.add(3.0)
        assert stat.count == 2
        assert stat.total == 4.0
        assert stat.min == 1.0
        assert stat.max == 3.0
        assert stat.mean == 2.0

    def test_empty_mean_is_zero(self):
        assert TimingStat().mean == 0.0

    def test_as_dict(self):
        stat = TimingStat()
        stat.add(2.0)
        d = stat.as_dict()
        assert d["count"] == 1.0
        assert d["total_s"] == 2.0
        assert d["min_s"] == 2.0

    def test_empty_as_dict_has_zero_min(self):
        assert TimingStat().as_dict()["min_s"] == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TimingStat().add(-1.0)


class TestTimingRegistry:
    def test_measure_records_elapsed_time(self):
        registry = TimingRegistry()
        with registry.measure("work"):
            time.sleep(0.01)
        assert registry.total("work") >= 0.005
        assert registry.stats()["work"].count == 1

    def test_measure_records_on_exception(self):
        registry = TimingRegistry()
        with pytest.raises(RuntimeError):
            with registry.measure("work"):
                raise RuntimeError("boom")
        assert registry.stats()["work"].count == 1

    def test_add_and_total(self):
        registry = TimingRegistry()
        registry.add("a", 1.0)
        registry.add("a", 2.0)
        registry.add("b", 5.0)
        assert registry.total("a") == 3.0
        assert registry.total("missing") == 0.0

    def test_reset(self):
        registry = TimingRegistry()
        registry.add("a", 1.0)
        registry.reset()
        assert registry.stats() == {}

    def test_render(self):
        registry = TimingRegistry()
        assert registry.render() == ""
        registry.add("sim.run", 0.5)
        text = registry.render()
        assert "sim.run" in text
        assert "count" in text


class TestNestedAttribution:
    """Nested measure() regions attribute elapsed time to the innermost."""

    def test_inner_time_is_not_double_counted(self):
        registry = TimingRegistry()
        with registry.measure("outer"):
            with registry.measure("inner"):
                time.sleep(0.02)
        inner = registry.total("inner")
        outer = registry.total("outer")
        assert inner >= 0.01
        # The outer section keeps only its own overhead, not inner's sleep.
        assert outer < inner

    def test_sequential_siblings_both_attributed(self):
        registry = TimingRegistry()
        with registry.measure("outer"):
            with registry.measure("a"):
                time.sleep(0.01)
            with registry.measure("b"):
                time.sleep(0.01)
        assert registry.total("a") >= 0.005
        assert registry.total("b") >= 0.005
        assert registry.total("outer") < registry.total("a") + registry.total("b")

    def test_three_levels_deep(self):
        registry = TimingRegistry()
        with registry.measure("l1"):
            with registry.measure("l2"):
                with registry.measure("l3"):
                    time.sleep(0.02)
        assert registry.total("l3") >= 0.01
        assert registry.total("l2") < registry.total("l3")
        assert registry.total("l1") < registry.total("l3")

    def test_same_name_nested_does_not_go_negative(self):
        registry = TimingRegistry()
        with registry.measure("work"):
            with registry.measure("work"):
                time.sleep(0.01)
        stats = registry.stats()["work"]
        assert stats.count == 2
        assert stats.min >= 0.0

    def test_reset_during_open_region_is_safe(self):
        registry = TimingRegistry()
        with registry.measure("outer"):
            registry.reset()
            with registry.measure("inner"):
                pass
        assert "inner" in registry.stats()
