"""AIMD(a, b) protocol rules (repro.protocols.aimd)."""

import pytest

from repro.model.sender import Observation
from repro.protocols.aimd import AIMD, reno


def obs(window: float, loss: float = 0.0, step: int = 0) -> Observation:
    return Observation(step=step, window=window, loss_rate=loss, rtt=0.042,
                       min_rtt=0.042)


class TestRules:
    def test_additive_increase_without_loss(self):
        assert AIMD(1, 0.5).next_window(obs(10.0)) == pytest.approx(11.0)

    def test_custom_increment(self):
        assert AIMD(2.5, 0.5).next_window(obs(10.0)) == pytest.approx(12.5)

    def test_multiplicative_decrease_on_loss(self):
        assert AIMD(1, 0.5).next_window(obs(10.0, loss=0.01)) == pytest.approx(5.0)

    def test_any_positive_loss_triggers_decrease(self):
        assert AIMD(1, 0.5).next_window(obs(10.0, loss=1e-12)) == pytest.approx(5.0)

    def test_decrease_factor_applied_exactly(self):
        assert AIMD(1, 0.875).next_window(obs(80.0, loss=0.5)) == pytest.approx(70.0)

    def test_stateless_across_calls(self):
        protocol = AIMD(1, 0.5)
        protocol.next_window(obs(10.0, loss=0.5))
        # No hidden state: the same observation yields the same answer.
        assert protocol.next_window(obs(10.0)) == pytest.approx(11.0)


class TestValidation:
    @pytest.mark.parametrize("a", [0.0, -1.0])
    def test_bad_increase(self, a):
        with pytest.raises(ValueError):
            AIMD(a, 0.5)

    @pytest.mark.parametrize("b", [0.0, 1.0, 1.5, -0.2])
    def test_bad_decrease(self, b):
        with pytest.raises(ValueError):
            AIMD(1, b)


class TestMeta:
    def test_loss_based_flag(self):
        assert AIMD(1, 0.5).loss_based is True

    def test_name_formats_parameters(self):
        assert AIMD(1, 0.5).name == "AIMD(1,0.5)"
        assert AIMD(2.5, 0.875).name == "AIMD(2.5,0.875)"

    def test_reno_preset(self):
        protocol = reno()
        assert protocol.a == 1.0
        assert protocol.b == 0.5

    def test_clone_preserves_parameters(self):
        clone = AIMD(2, 0.7).clone()
        assert clone.a == 2 and clone.b == 0.7

    def test_repr_is_name(self):
        assert repr(AIMD(1, 0.5)) == "AIMD(1,0.5)"
