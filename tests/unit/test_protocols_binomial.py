"""BIN(a, b, k, l) binomial protocols (repro.protocols.binomial)."""

import pytest

from repro.model.sender import Observation
from repro.protocols.binomial import BIN, iiad, sqrt_protocol


def obs(window: float, loss: float = 0.0) -> Observation:
    return Observation(step=0, window=window, loss_rate=loss, rtt=0.042,
                       min_rtt=0.042)


class TestRules:
    def test_increase_scales_inversely_with_window_power(self):
        protocol = BIN(a=1, b=0.5, k=1, l=0)
        assert protocol.next_window(obs(10.0)) == pytest.approx(10.1)
        assert protocol.next_window(obs(100.0)) == pytest.approx(100.01)

    def test_k_zero_reduces_to_additive(self):
        protocol = BIN(a=2, b=0.5, k=0, l=1)
        assert protocol.next_window(obs(10.0)) == pytest.approx(12.0)

    def test_decrease_with_l_one_is_multiplicative(self):
        # x - b*x = (1-b)*x: BIN(a, b, 0, 1) == AIMD(a, 1-b).
        protocol = BIN(a=1, b=0.5, k=0, l=1)
        assert protocol.next_window(obs(10.0, loss=0.1)) == pytest.approx(5.0)

    def test_decrease_with_l_zero_is_additive(self):
        # IIAD: the decrease subtracts the constant b regardless of window.
        protocol = BIN(a=1, b=1, k=1, l=0)
        assert protocol.next_window(obs(10.0, loss=0.1)) == pytest.approx(9.0)
        assert protocol.next_window(obs(100.0, loss=0.1)) == pytest.approx(99.0)

    def test_sqrt_member(self):
        protocol = sqrt_protocol(a=1, b=0.5)
        assert protocol.next_window(obs(4.0)) == pytest.approx(4.5)  # +1/sqrt(4)
        assert protocol.next_window(obs(4.0, loss=0.1)) == pytest.approx(3.0)  # -0.5*2

    def test_decrease_clamped_at_zero(self):
        # Large additive decrease cannot take the window negative.
        protocol = BIN(a=1, b=1, k=0, l=0)
        assert protocol.next_window(obs(0.5, loss=0.5)) == 0.0

    def test_zero_window_restarts_additively(self):
        # a/x**k diverges at 0; the protocol restarts from a instead.
        protocol = BIN(a=1, b=0.5, k=1, l=0)
        assert protocol.next_window(obs(0.0)) == pytest.approx(1.0)


class TestValidation:
    def test_bad_a(self):
        with pytest.raises(ValueError):
            BIN(a=0, b=0.5, k=1, l=0)

    @pytest.mark.parametrize("b", [0.0, 1.5])
    def test_bad_b(self, b):
        with pytest.raises(ValueError):
            BIN(a=1, b=b, k=1, l=0)

    def test_b_equal_one_allowed(self):
        # The paper allows 0 < b <= 1 (IIAD uses b = 1).
        BIN(a=1, b=1.0, k=1, l=0)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            BIN(a=1, b=0.5, k=-0.5, l=0)

    @pytest.mark.parametrize("l", [-0.1, 1.1])
    def test_l_outside_unit_interval_rejected(self, l):
        with pytest.raises(ValueError):
            BIN(a=1, b=0.5, k=0, l=l)


class TestCompatibility:
    def test_iiad_is_tcp_compatible(self):
        assert iiad().is_tcp_compatible()  # k + l = 1

    def test_sqrt_is_tcp_compatible(self):
        assert sqrt_protocol().is_tcp_compatible()  # k + l = 1

    def test_aggressive_member_is_not(self):
        assert not BIN(a=1, b=0.5, k=0.2, l=0.3).is_tcp_compatible()

    def test_name(self):
        assert BIN(1, 0.5, 1, 0).name == "BIN(1,0.5,1,0)"
