"""CUBIC(c, b) protocol (repro.protocols.cubic)."""

import pytest

from repro.model.sender import Observation
from repro.protocols.cubic import CUBIC, cubic_kernel


def obs(window: float, loss: float = 0.0, step: int = 0) -> Observation:
    return Observation(step=step, window=window, loss_rate=loss, rtt=0.042,
                       min_rtt=0.042)


class TestCurve:
    def test_backoff_on_loss(self):
        protocol = CUBIC(0.4, 0.8)
        assert protocol.next_window(obs(100.0, loss=0.1)) == pytest.approx(80.0)

    def test_curve_passes_through_backoff_point(self):
        # At T = 0 the curve equals x_max * b; one step later it is still
        # below x_max (concave recovery region).
        protocol = CUBIC(0.4, 0.8)
        after_loss = protocol.next_window(obs(100.0, loss=0.1))
        next_w = protocol.next_window(obs(after_loss))
        assert after_loss < next_w < 100.0

    def test_curve_plateaus_at_x_max(self):
        # Around T = K the window revisits x_max.
        protocol = CUBIC(0.4, 0.8)
        protocol.next_window(obs(100.0, loss=0.1))
        k = protocol.inflection_delay
        w = None
        for step in range(int(round(k))):
            w = protocol.next_window(obs(w if w is not None else 80.0))
        assert w == pytest.approx(100.0, rel=0.05)

    def test_convex_acceleration_past_plateau(self):
        protocol = CUBIC(0.4, 0.8)
        protocol.next_window(obs(100.0, loss=0.1))
        windows = []
        w = 80.0
        for _ in range(20):
            w = protocol.next_window(obs(w))
            windows.append(w)
        increments = [b - a for a, b in zip(windows, windows[1:])]
        # Far past K the increments grow (convex region).
        assert increments[-1] > increments[len(increments) // 2]

    def test_first_call_anchors_at_current_window(self):
        # Before any loss, the curve starts from the initial window.
        protocol = CUBIC(0.4, 0.8)
        first = protocol.next_window(obs(10.0))
        assert first > 0.0

    def test_reset_clears_anchor(self):
        protocol = CUBIC(0.4, 0.8)
        protocol.next_window(obs(100.0, loss=0.5))
        protocol.reset()
        assert protocol.inflection_delay == 0.0


class TestState:
    def test_steps_since_loss_drive_growth(self):
        protocol = CUBIC(0.4, 0.8)
        protocol.next_window(obs(50.0, loss=0.1))
        w1 = protocol.next_window(obs(40.0))
        protocol2 = CUBIC(0.4, 0.8)
        protocol2.next_window(obs(50.0, loss=0.1))
        protocol2.next_window(obs(40.0))
        w2 = protocol2.next_window(obs(40.0))
        # Same anchor, later step: the second protocol has advanced further.
        assert w2 != pytest.approx(w1) or w2 > w1 - 1e-9

    def test_new_loss_re_anchors(self):
        protocol = CUBIC(0.4, 0.8)
        protocol.next_window(obs(100.0, loss=0.1))
        protocol.next_window(obs(80.0))
        assert protocol.next_window(obs(60.0, loss=0.2)) == pytest.approx(48.0)


class TestValidation:
    def test_bad_c(self):
        with pytest.raises(ValueError):
            CUBIC(0.0, 0.8)

    @pytest.mark.parametrize("b", [0.0, 1.0])
    def test_bad_b(self, b):
        with pytest.raises(ValueError):
            CUBIC(0.4, b)

    def test_kernel_preset(self):
        protocol = cubic_kernel()
        assert protocol.c == pytest.approx(0.4)
        assert protocol.b == pytest.approx(0.8)

    def test_loss_based(self):
        assert CUBIC(0.4, 0.8).loss_based is True

    def test_name(self):
        assert CUBIC(0.4, 0.8).name == "CUBIC(0.4,0.8)"
