"""HighSpeed TCP and LEDBAT (repro.protocols.highspeed / .ledbat)."""

import pytest

from repro.model.dynamics import FluidSimulator, SimulationConfig
from repro.model.link import Link
from repro.model.sender import Observation
from repro.protocols.aimd import AIMD
from repro.protocols.highspeed import HighSpeedTcp
from repro.protocols.ledbat import Ledbat


def obs(window: float, loss: float = 0.0, rtt: float = 0.042,
        min_rtt: float = 0.042) -> Observation:
    return Observation(step=0, window=window, loss_rate=loss, rtt=rtt,
                       min_rtt=min_rtt)


class TestHighSpeedResponseFunction:
    def test_standard_tcp_below_low_window(self):
        protocol = HighSpeedTcp()
        assert protocol.increase(20.0) == 1.0
        assert protocol.decrease_fraction(20.0) == 0.5
        # Rule-level equivalence with Reno in the low-window regime.
        assert protocol.next_window(obs(20.0)) == AIMD(1, 0.5).next_window(obs(20.0))
        assert protocol.next_window(obs(20.0, loss=0.1)) == pytest.approx(10.0)

    def test_decrease_fraction_shrinks_log_linearly(self):
        protocol = HighSpeedTcp()
        fractions = [protocol.decrease_fraction(w) for w in (38, 1000, 83000)]
        assert fractions[0] == pytest.approx(0.5)
        assert fractions[-1] == pytest.approx(0.1)
        assert fractions == sorted(fractions, reverse=True)

    def test_increase_grows_with_window(self):
        protocol = HighSpeedTcp()
        increases = [protocol.increase(w) for w in (38, 1000, 10000, 83000)]
        assert increases == sorted(increases)
        assert increases[-1] > 10.0

    def test_rfc_anchor_point(self):
        # RFC 3649 Table 1: around w = 83000, a(w) ~ 70-72 MSS per RTT.
        protocol = HighSpeedTcp()
        assert protocol.increase(83000.0) == pytest.approx(70.0, rel=0.1)

    def test_response_p_monotone_decreasing(self):
        protocol = HighSpeedTcp()
        ps = [protocol.response_p(w) for w in (38, 500, 5000, 83000)]
        assert ps == sorted(ps, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            HighSpeedTcp(b_high=0.5)
        with pytest.raises(ValueError):
            HighSpeedTcp(b_high=0.0)

    def test_small_bdp_behaves_like_reno(self):
        # On a small-BDP link HSTCP stays in the standard-TCP regime and
        # shares fairly with Reno.
        link = Link.from_mbps(5, 42, 20)  # C = 17.5 MSS
        sim = FluidSimulator(link, [HighSpeedTcp(), AIMD(1, 0.5)])
        trace = sim.run(2000)
        means = trace.tail(0.5).mean_windows()
        assert means[1] / means[0] > 0.8

    def test_large_bdp_outcompetes_reno(self):
        # On a big-BDP link the adaptive increase kicks in.
        link = Link.from_mbps(1000, 100, 500)  # C ~ 8333 MSS
        sim = FluidSimulator(link, [HighSpeedTcp(), AIMD(1, 0.5)])
        trace = sim.run(4000)
        means = trace.tail(0.5).mean_windows()
        assert means[0] > 2 * means[1]


class TestLedbat:
    def test_not_loss_based(self):
        assert Ledbat().loss_based is False

    def test_ramps_when_queue_empty(self):
        protocol = Ledbat(target=0.1, gain=1.0, max_ramp=1.0)
        # No queuing delay: full ramp.
        assert protocol.next_window(obs(10.0)) == pytest.approx(11.0)

    def test_holds_at_target(self):
        protocol = Ledbat(target=0.05)
        # Queuing delay exactly at target: no change.
        assert protocol.next_window(
            obs(10.0, rtt=0.042 + 0.05)
        ) == pytest.approx(10.0)

    def test_yields_above_target(self):
        protocol = Ledbat(target=0.05, gain=1.0)
        new = protocol.next_window(obs(10.0, rtt=0.042 + 0.1))
        assert new < 10.0

    def test_halves_on_loss(self):
        assert Ledbat().next_window(obs(10.0, loss=0.01)) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Ledbat(target=0.0)
        with pytest.raises(ValueError):
            Ledbat(gain=0.0)
        with pytest.raises(ValueError):
            Ledbat(max_ramp=0.0)

    def test_scavenges_only_spare_capacity(self, emulab_link):
        # Alone, LEDBAT fills the link up to its delay budget...
        alone = FluidSimulator(emulab_link, [Ledbat(target=0.05)]).run(2000)
        util_alone = alone.tail(0.5).utilization().mean()
        assert util_alone > 0.8
        # ...but cedes most of the link to a competing Reno (Theorem 5's
        # direction; LEDBAT's gain-capped decrease keeps it from vanishing
        # entirely within the fluid model's step granularity).
        shared = FluidSimulator(
            emulab_link, [Ledbat(target=0.05), AIMD(1, 0.5)]
        ).run(2000)
        means = shared.tail(0.5).mean_windows()
        assert means[0] < 0.35 * means[1]

    def test_keeps_latency_low(self, emulab_link):
        from repro.core.metrics.latency import estimate_latency_avoidance
        from repro.core.metrics.base import EstimatorConfig

        result = estimate_latency_avoidance(
            Ledbat(target=0.02), emulab_link, EstimatorConfig(steps=1500)
        )
        # Inflation stays in the vicinity of target/base_rtt ~ 0.5.
        assert result.score < 1.0


class TestRegistrySpecs:
    def test_hstcp_spec(self):
        from repro.protocols.registry import make_protocol

        assert isinstance(make_protocol("hstcp"), HighSpeedTcp)
        assert make_protocol("HSTCP(0.2)").b_high == pytest.approx(0.2)

    def test_ledbat_spec(self):
        from repro.protocols.registry import make_protocol

        assert isinstance(make_protocol("ledbat"), Ledbat)
        assert make_protocol("LEDBAT(0.05)").target == pytest.approx(0.05)
