"""MIMD(a, b) protocol rules (repro.protocols.mimd)."""

import pytest

from repro.model.sender import Observation
from repro.protocols.mimd import MIMD, MimdPccBound, scalable_mimd


def obs(window: float, loss: float = 0.0) -> Observation:
    return Observation(step=0, window=window, loss_rate=loss, rtt=0.042,
                       min_rtt=0.042)


class TestRules:
    def test_multiplicative_increase(self):
        assert MIMD(1.01, 0.875).next_window(obs(100.0)) == pytest.approx(101.0)

    def test_multiplicative_decrease(self):
        assert MIMD(1.01, 0.875).next_window(obs(100.0, loss=0.1)) == pytest.approx(87.5)

    def test_ratio_preservation(self):
        # The defining MIMD property: two windows keep their ratio under
        # identical feedback — the root of its 0-fairness.
        protocol = MIMD(1.05, 0.8)
        w1, w2 = 10.0, 40.0
        for loss in (0.0, 0.1, 0.0, 0.0, 0.2):
            w1 = protocol.next_window(obs(w1, loss))
            w2 = protocol.next_window(obs(w2, loss))
        assert w2 / w1 == pytest.approx(4.0)

    def test_growth_compounds(self):
        protocol = MIMD(1.1, 0.5)
        w = 1.0
        for _ in range(10):
            w = protocol.next_window(obs(w))
        assert w == pytest.approx(1.1**10)


class TestValidation:
    @pytest.mark.parametrize("a", [1.0, 0.99, 0.0])
    def test_increase_must_exceed_one(self, a):
        with pytest.raises(ValueError):
            MIMD(a, 0.875)

    @pytest.mark.parametrize("b", [0.0, 1.0])
    def test_bad_decrease(self, b):
        with pytest.raises(ValueError):
            MIMD(1.01, b)


class TestPresets:
    def test_scalable(self):
        protocol = scalable_mimd()
        assert protocol.a == pytest.approx(1.01)
        assert protocol.b == pytest.approx(0.875)

    def test_pcc_bound_parameters(self):
        # The paper: PCC is strictly more aggressive than MIMD(1.01, 0.99).
        bound = MimdPccBound()
        assert bound.a == pytest.approx(1.01)
        assert bound.b == pytest.approx(0.99)
        assert "PCC" in bound.name

    def test_pcc_bound_is_mimd(self):
        assert isinstance(MimdPccBound(), MIMD)

    def test_loss_based(self):
        assert MIMD(1.01, 0.875).loss_based is True
