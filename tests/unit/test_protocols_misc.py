"""Vegas-like, probe-and-hold and slow-start protocols."""

import pytest

from repro.model.sender import Observation
from repro.protocols.aimd import AIMD
from repro.protocols.probe import ProbeAndHold
from repro.protocols.slow_start import SlowStartWrapper
from repro.protocols.vegas import VegasLike


def obs(window: float, loss: float = 0.0, rtt: float = 0.042,
        min_rtt: float = 0.042) -> Observation:
    return Observation(step=0, window=window, loss_rate=loss, rtt=rtt,
                       min_rtt=min_rtt)


class TestVegasLike:
    def test_not_loss_based(self):
        assert VegasLike().loss_based is False

    def test_increases_while_latency_low(self):
        protocol = VegasLike(gamma=0.1, a=1, b=0.875)
        assert protocol.next_window(obs(10.0, rtt=0.042)) == pytest.approx(11.0)

    def test_backs_off_when_latency_exceeds_bound(self):
        protocol = VegasLike(gamma=0.1, a=1, b=0.875)
        # RTT 20% above the min violates the 10% slack.
        assert protocol.next_window(obs(10.0, rtt=0.0504)) == pytest.approx(8.75)

    def test_backs_off_on_loss_even_at_low_latency(self):
        protocol = VegasLike(gamma=0.1, a=1, b=0.875)
        assert protocol.next_window(obs(10.0, loss=0.1)) == pytest.approx(8.75)

    def test_bound_tracks_min_rtt(self):
        protocol = VegasLike(gamma=0.5)
        # min_rtt 0.02, rtt 0.025: inside the 50% slack -> increase.
        assert protocol.next_window(obs(10.0, rtt=0.025, min_rtt=0.02)) == 11.0

    def test_validation(self):
        with pytest.raises(ValueError):
            VegasLike(gamma=0.0)
        with pytest.raises(ValueError):
            VegasLike(a=0)
        with pytest.raises(ValueError):
            VegasLike(b=1.0)


class TestProbeAndHold:
    def test_probes_until_first_loss(self):
        protocol = ProbeAndHold(a=1, b=0.9)
        assert protocol.next_window(obs(10.0)) == pytest.approx(11.0)
        assert not protocol.holding

    def test_holds_after_first_loss(self):
        protocol = ProbeAndHold(a=1, b=0.9)
        held = protocol.next_window(obs(100.0, loss=0.05))
        assert held == pytest.approx(90.0)
        assert protocol.holding

    def test_hold_is_permanent(self):
        protocol = ProbeAndHold(a=1, b=0.9)
        protocol.next_window(obs(100.0, loss=0.05))
        # Even loss-free observations no longer change the window.
        assert protocol.next_window(obs(90.0)) == pytest.approx(90.0)
        assert protocol.next_window(obs(90.0, loss=0.5)) == pytest.approx(90.0)

    def test_reset_resumes_probing(self):
        protocol = ProbeAndHold(a=1, b=0.9)
        protocol.next_window(obs(100.0, loss=0.05))
        protocol.reset()
        assert not protocol.holding
        assert protocol.next_window(obs(10.0)) == pytest.approx(11.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbeAndHold(a=0)
        with pytest.raises(ValueError):
            ProbeAndHold(b=1.0)


class TestSlowStart:
    def test_doubles_until_loss(self):
        protocol = SlowStartWrapper(AIMD(1, 0.5))
        assert protocol.next_window(obs(1.0)) == pytest.approx(2.0)
        assert protocol.next_window(obs(2.0)) == pytest.approx(4.0)
        assert protocol.in_slow_start

    def test_exits_on_loss_and_delegates(self):
        protocol = SlowStartWrapper(AIMD(1, 0.5))
        protocol.next_window(obs(1.0))
        # Loss: slow start ends; inner AIMD handles this very observation.
        assert protocol.next_window(obs(8.0, loss=0.1)) == pytest.approx(4.0)
        assert not protocol.in_slow_start
        assert protocol.next_window(obs(4.0)) == pytest.approx(5.0)

    def test_ssthresh_caps_the_ramp(self):
        protocol = SlowStartWrapper(AIMD(1, 0.5), ssthresh=10.0)
        assert protocol.next_window(obs(6.0)) == pytest.approx(10.0)
        assert not protocol.in_slow_start

    def test_window_at_threshold_exits(self):
        protocol = SlowStartWrapper(AIMD(1, 0.5), ssthresh=8.0)
        # Already at ssthresh: delegate immediately.
        assert protocol.next_window(obs(8.0)) == pytest.approx(9.0)

    def test_reset_restores_slow_start(self):
        protocol = SlowStartWrapper(AIMD(1, 0.5))
        protocol.next_window(obs(8.0, loss=0.1))
        protocol.reset()
        assert protocol.in_slow_start

    def test_inherits_loss_based_flag(self):
        from repro.protocols.vegas import VegasLike

        assert SlowStartWrapper(AIMD(1, 0.5)).loss_based is True
        assert SlowStartWrapper(VegasLike()).loss_based is False

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowStartWrapper(AIMD(1, 0.5), ssthresh=0.0)

    def test_name_mentions_inner(self):
        assert "AIMD(1,0.5)" in SlowStartWrapper(AIMD(1, 0.5)).name
