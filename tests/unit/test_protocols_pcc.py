"""The PCC-like utility-gradient protocol (repro.protocols.pcc)."""

import pytest

from repro.model.sender import Observation
from repro.protocols.pcc import PccLike, allegro_utility


def obs(window: float, loss: float = 0.0, step: int = 0) -> Observation:
    return Observation(step=step, window=window, loss_rate=loss, rtt=0.042,
                       min_rtt=0.042)


class TestUtility:
    def test_lossless_utility_is_half_rate_at_tolerance_free_point(self):
        # With zero loss, S(0) ~ 1 for a steep sigmoid, so u ~ rate.
        assert allegro_utility(100.0, 0.0) == pytest.approx(100.0, rel=0.01)

    def test_utility_collapses_past_tolerance(self):
        below = allegro_utility(100.0, 0.03)
        above = allegro_utility(100.0, 0.08)
        assert below > 0 > above

    def test_utility_monotone_decreasing_in_loss(self):
        values = [allegro_utility(100.0, loss) for loss in (0.0, 0.02, 0.05, 0.2)]
        assert values == sorted(values, reverse=True)

    def test_utility_scales_linearly_in_rate(self):
        assert allegro_utility(200.0, 0.01) == pytest.approx(
            2 * allegro_utility(100.0, 0.01)
        )

    def test_extreme_sigmoid_does_not_overflow(self):
        allegro_utility(1.0, 1.0, sigmoid_alpha=1e6)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            allegro_utility(-1.0, 0.0)
        with pytest.raises(ValueError):
            allegro_utility(1.0, 1.5)


class TestProbeCycle:
    def test_first_decision_probes_up(self):
        protocol = PccLike(probe=0.05)
        assert protocol.next_window(obs(100.0)) == pytest.approx(105.0)

    def test_second_decision_probes_down(self):
        protocol = PccLike(probe=0.05)
        protocol.next_window(obs(100.0))
        assert protocol.next_window(obs(105.0)) == pytest.approx(95.0)

    def test_lossless_link_moves_base_up(self):
        # More rate, no loss: utility favours up; the base should rise.
        protocol = PccLike(probe=0.05, step=0.01)
        w = 100.0
        for _ in range(12):
            w = protocol.next_window(obs(w))
        assert protocol._base > 100.0

    def test_heavy_loss_moves_base_down(self):
        protocol = PccLike(probe=0.05, step=0.01)
        w = 100.0
        for _ in range(12):
            w = protocol.next_window(obs(w, loss=0.2))
        assert protocol._base < 100.0

    def test_amplifier_grows_with_consecutive_wins(self):
        protocol = PccLike(probe=0.05, step=0.01, max_amplifier=3)
        w = 100.0
        for _ in range(20):
            w = protocol.next_window(obs(w))
        assert protocol._amplifier == 3

    def test_reset_restores_initial_state(self):
        protocol = PccLike()
        protocol.next_window(obs(100.0))
        protocol.reset()
        assert protocol._base is None

    def test_deterministic(self):
        p1, p2 = PccLike(), PccLike()
        seq1, seq2 = [], []
        w1 = w2 = 50.0
        for i in range(30):
            loss = 0.1 if i % 7 == 0 else 0.0
            w1 = p1.next_window(obs(w1, loss))
            w2 = p2.next_window(obs(w2, loss))
            seq1.append(w1)
            seq2.append(w2)
        assert seq1 == seq2


class TestValidation:
    @pytest.mark.parametrize("probe", [0.0, 0.6])
    def test_bad_probe(self, probe):
        with pytest.raises(ValueError):
            PccLike(probe=probe)

    def test_bad_step(self):
        with pytest.raises(ValueError):
            PccLike(step=0.0)

    def test_bad_tolerance(self):
        with pytest.raises(ValueError):
            PccLike(tolerance=0.0)

    def test_bad_amplifier(self):
        with pytest.raises(ValueError):
            PccLike(max_amplifier=0)

    def test_loss_based(self):
        # The Allegro utility reads only rate and loss.
        assert PccLike().loss_based is True
