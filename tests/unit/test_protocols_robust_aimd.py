"""Robust-AIMD(a, b, epsilon) — the paper's new protocol."""

import pytest

from repro.model.sender import Observation
from repro.protocols.robust_aimd import RobustAIMD


def obs(window: float, loss: float = 0.0) -> Observation:
    return Observation(step=0, window=window, loss_rate=loss, rtt=0.042,
                       min_rtt=0.042)


class TestThreshold:
    def test_increases_with_zero_loss(self):
        assert RobustAIMD(1, 0.8, 0.01).next_window(obs(10.0)) == pytest.approx(11.0)

    def test_tolerates_loss_below_threshold(self):
        # The defining Robust-AIMD behaviour: sub-threshold loss is ignored.
        protocol = RobustAIMD(1, 0.8, 0.01)
        assert protocol.next_window(obs(10.0, loss=0.009)) == pytest.approx(11.0)

    def test_decreases_at_threshold(self):
        # The rule is >= epsilon, not > epsilon.
        protocol = RobustAIMD(1, 0.8, 0.01)
        assert protocol.next_window(obs(10.0, loss=0.01)) == pytest.approx(8.0)

    def test_decreases_above_threshold(self):
        protocol = RobustAIMD(1, 0.8, 0.01)
        assert protocol.next_window(obs(10.0, loss=0.5)) == pytest.approx(8.0)

    def test_paper_parameters(self):
        # Table 2 uses Robust-AIMD(1, 0.8, 0.01).
        protocol = RobustAIMD()
        assert (protocol.a, protocol.b, protocol.epsilon) == (1.0, 0.8, 0.01)


class TestValidation:
    def test_bad_a(self):
        with pytest.raises(ValueError):
            RobustAIMD(0, 0.8, 0.01)

    @pytest.mark.parametrize("b", [0.0, 1.0])
    def test_bad_b(self, b):
        with pytest.raises(ValueError):
            RobustAIMD(1, b, 0.01)

    @pytest.mark.parametrize("eps", [0.0, 1.0, -0.1])
    def test_bad_epsilon(self, eps):
        with pytest.raises(ValueError):
            RobustAIMD(1, 0.8, eps)

    def test_loss_based(self):
        assert RobustAIMD().loss_based is True

    def test_name_contains_all_parameters(self):
        assert RobustAIMD(1, 0.8, 0.01).name == "Robust-AIMD(1,0.8,0.01)"
