"""The package's public API surface stays importable and coherent."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_path(self):
        # The README's first snippet, end to end.
        link = repro.Link.from_mbps(20, 42, 100)
        sim = repro.FluidSimulator(link, [repro.AIMD(1, 0.5)] * 2)
        trace = sim.run(steps=200)
        assert trace.utilization().mean() > 0


SUBMODULES = [
    "repro.model",
    "repro.model.units",
    "repro.model.link",
    "repro.model.sender",
    "repro.model.dynamics",
    "repro.model.trace",
    "repro.model.random_loss",
    "repro.model.events",
    "repro.protocols",
    "repro.protocols.base",
    "repro.protocols.aimd",
    "repro.protocols.mimd",
    "repro.protocols.binomial",
    "repro.protocols.cubic",
    "repro.protocols.robust_aimd",
    "repro.protocols.pcc",
    "repro.protocols.vegas",
    "repro.protocols.probe",
    "repro.protocols.slow_start",
    "repro.protocols.highspeed",
    "repro.protocols.ledbat",
    "repro.protocols.dctcp",
    "repro.protocols.registry",
    "repro.protocols.presets",
    "repro.core",
    "repro.core.metrics",
    "repro.core.metrics.extensions",
    "repro.core.theory",
    "repro.core.theory.table1",
    "repro.core.theory.theorems",
    "repro.core.theory.pareto",
    "repro.core.theory.equilibrium",
    "repro.core.characterization",
    "repro.packetsim",
    "repro.packetsim.workload",
    "repro.netmodel",
    "repro.analysis",
    "repro.analysis.timeseries",
    "repro.experiments",
    "repro.experiments.sweep",
    "repro.experiments.survey",
    "repro.experiments.fct",
    "repro.storage",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", SUBMODULES)
def test_submodule_imports_and_documents(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} is missing a module docstring"


@pytest.mark.parametrize("module_name", [
    "repro", "repro.model", "repro.protocols", "repro.analysis",
    "repro.netmodel", "repro.core.metrics",
])
def test_declared_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name}"
