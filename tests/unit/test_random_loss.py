"""Non-congestion loss processes (repro.model.random_loss)."""

import pytest

from repro.model.random_loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    NoLoss,
    TraceLoss,
    combine_loss,
)


class TestCombine:
    def test_zero_plus_zero(self):
        assert combine_loss(0.0, 0.0) == 0.0

    def test_one_source_only(self):
        assert combine_loss(0.3, 0.0) == pytest.approx(0.3)
        assert combine_loss(0.0, 0.3) == pytest.approx(0.3)

    def test_independent_combination(self):
        assert combine_loss(0.5, 0.5) == pytest.approx(0.75)

    def test_saturates_at_one(self):
        assert combine_loss(1.0, 0.5) == pytest.approx(1.0)

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_range_validation(self, bad):
        with pytest.raises(ValueError):
            combine_loss(bad, 0.0)
        with pytest.raises(ValueError):
            combine_loss(0.0, bad)


class TestNoLoss:
    def test_always_zero(self):
        process = NoLoss()
        assert process.rate(0, 0) == 0.0
        assert process.rate(999, 5) == 0.0
        process.reset()  # no-op


class TestBernoulli:
    def test_deterministic_constant_rate(self):
        process = BernoulliLoss(0.05)
        assert all(process.rate(t, 0) == 0.05 for t in range(50))

    def test_range_validation(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)
        with pytest.raises(ValueError):
            BernoulliLoss(0.1, p_active=2.0)

    def test_stochastic_mode_is_seeded(self):
        p1 = BernoulliLoss(0.1, deterministic=False, seed=7)
        p2 = BernoulliLoss(0.1, deterministic=False, seed=7)
        rates1 = [p1.rate(t, 0) for t in range(100)]
        rates2 = [p2.rate(t, 0) for t in range(100)]
        assert rates1 == rates2

    def test_stochastic_mode_caches_per_step(self):
        process = BernoulliLoss(0.1, deterministic=False, seed=1)
        assert process.rate(3, 0) == process.rate(3, 0)

    def test_reset_replays_sequence(self):
        process = BernoulliLoss(0.1, deterministic=False, seed=3)
        first = [process.rate(t, 0) for t in range(20)]
        process.reset()
        second = [process.rate(t, 0) for t in range(20)]
        assert first == second

    def test_stochastic_values_are_zero_or_p(self):
        process = BernoulliLoss(0.1, deterministic=False, p_active=0.5)
        values = {process.rate(t, 0) for t in range(200)}
        assert values <= {0.0, 0.1}
        assert len(values) == 2  # both outcomes occur


class TestGilbertElliott:
    def test_rates_are_state_values(self):
        process = GilbertElliottLoss(loss_good=0.0, loss_bad=0.2, seed=1)
        values = {process.rate(t, 0) for t in range(500)}
        assert values <= {0.0, 0.2}

    def test_bad_state_reachable(self):
        process = GilbertElliottLoss(p_gb=0.2, p_bg=0.2, loss_bad=0.3, seed=2)
        values = [process.rate(t, 0) for t in range(300)]
        assert 0.3 in values

    def test_burstiness(self):
        # With sticky states, consecutive steps often share their rate.
        process = GilbertElliottLoss(p_gb=0.05, p_bg=0.05, loss_bad=1.0, seed=3)
        values = [process.rate(t, 0) for t in range(400)]
        same = sum(1 for a, b in zip(values, values[1:]) if a == b)
        assert same > 300

    def test_per_sender_chains_independent(self):
        process = GilbertElliottLoss(p_gb=0.3, p_bg=0.3, loss_bad=1.0, seed=4)
        a = [process.rate(t, 0) for t in range(100)]
        b = [process.rate(t, 1) for t in range(100)]
        assert a != b

    def test_reset_and_determinism(self):
        process = GilbertElliottLoss(seed=5)
        first = [process.rate(t, 0) for t in range(100)]
        process.reset()
        second = [process.rate(t, 0) for t in range(100)]
        assert first == second

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_gb=1.5)
        with pytest.raises(ValueError):
            GilbertElliottLoss(loss_bad=-0.1)

    def test_cached_rate_is_stable_even_queried_out_of_order(self):
        process = GilbertElliottLoss(p_gb=0.3, p_bg=0.3, seed=6)
        late = process.rate(10, 0)
        early = process.rate(5, 0)  # cache miss behind the chain; allowed
        assert process.rate(10, 0) == late
        assert process.rate(5, 0) == early


class TestTraceLoss:
    def test_replays_sequence(self):
        process = TraceLoss([0.0, 0.1, 0.2])
        assert [process.rate(t, 0) for t in range(3)] == [0.0, 0.1, 0.2]

    def test_final_value_persists(self):
        process = TraceLoss([0.0, 0.3])
        assert process.rate(100, 0) == pytest.approx(0.3)

    def test_same_for_all_senders(self):
        process = TraceLoss([0.1])
        assert process.rate(0, 0) == process.rate(0, 7)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceLoss([])

    def test_out_of_range_rates_rejected(self):
        with pytest.raises(ValueError):
            TraceLoss([0.0, 1.2])

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            TraceLoss([0.1]).rate(-1, 0)
