"""String-spec protocol construction (repro.protocols.registry)."""

import pytest

from repro.protocols.aimd import AIMD
from repro.protocols.base import Protocol
from repro.protocols.binomial import BIN
from repro.protocols.cubic import CUBIC
from repro.protocols.mimd import MIMD
from repro.protocols.registry import (
    available_protocols,
    make_protocol,
    register_protocol,
)
from repro.protocols.robust_aimd import RobustAIMD


class TestSpecs:
    def test_aimd_spec(self):
        protocol = make_protocol("AIMD(1, 0.5)")
        assert isinstance(protocol, AIMD)
        assert (protocol.a, protocol.b) == (1.0, 0.5)

    def test_case_insensitive(self):
        assert isinstance(make_protocol("aimd(2, 0.7)"), AIMD)

    def test_mimd_spec(self):
        protocol = make_protocol("MIMD(1.01, 0.875)")
        assert isinstance(protocol, MIMD)

    def test_bin_spec_four_args(self):
        protocol = make_protocol("BIN(1, 0.5, 1, 0)")
        assert isinstance(protocol, BIN)
        assert (protocol.k, protocol.l) == (1.0, 0.0)

    def test_cubic_spec(self):
        assert isinstance(make_protocol("CUBIC(0.4, 0.8)"), CUBIC)

    def test_robust_aimd_spec_with_dash(self):
        protocol = make_protocol("Robust-AIMD(1, 0.8, 0.01)")
        assert isinstance(protocol, RobustAIMD)
        assert protocol.epsilon == pytest.approx(0.01)

    def test_whitespace_tolerated(self):
        assert isinstance(make_protocol("  AIMD( 1 ,0.5 ) "), AIMD)

    def test_invalid_parameters_propagate(self):
        with pytest.raises(ValueError):
            make_protocol("AIMD(0, 0.5)")

    def test_non_numeric_parameter(self):
        with pytest.raises(ValueError, match="non-numeric"):
            make_protocol("AIMD(x, 0.5)")

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown protocol family"):
            make_protocol("QUIC(1)")

    def test_garbage_spec(self):
        with pytest.raises(ValueError, match="unrecognized"):
            make_protocol("not a spec at all")


class TestPresets:
    @pytest.mark.parametrize(
        "name", ["reno", "cubic", "scalable", "robust-aimd", "pcc", "pcc-bound",
                 "iiad", "sqrt", "vegas"]
    )
    def test_preset_resolves(self, name):
        assert isinstance(make_protocol(name), Protocol)

    def test_reno_parameters(self):
        reno = make_protocol("reno")
        assert isinstance(reno, AIMD)
        assert (reno.a, reno.b) == (1.0, 0.5)

    def test_listing_contains_presets_and_families(self):
        listing = available_protocols()
        assert "reno" in listing["presets"]
        assert "aimd" in listing["families"]


class TestRegistration:
    def test_register_and_build(self):
        class Custom(AIMD):
            pass

        register_protocol("custom-aimd", Custom)
        assert isinstance(make_protocol("custom-aimd(1, 0.5)"), Custom)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_protocol("  ", AIMD)
