"""Rendering functions of the experiment drivers produce coherent text."""

import pytest

from repro.core.metrics import EstimatorConfig
from repro.experiments.claims import ClaimsResult, TheoremCheck, render_claims
from repro.experiments.emulab import (
    CellMeasurement,
    EmulabResult,
    HierarchyCheck,
    render_emulab,
)
from repro.experiments.figure1 import Figure1Result, render_figure1
from repro.experiments.table2 import Table2Cell, Table2Result, render_table2
from repro.core.theory.pareto import figure1_surface


class TestRenderClaims:
    def make(self, holds=True):
        return ClaimsResult(checks=[
            TheoremCheck("Theorem 1", "AIMD(1,0.5)", "x >= 0.5",
                         "measured 0.6", holds),
        ])

    def test_all_hold_banner(self):
        assert "ALL HOLD" in render_claims(self.make(True))

    def test_failure_banner(self):
        text = render_claims(self.make(False))
        assert "1 FAILED" in text

    def test_contains_instance(self):
        assert "AIMD(1,0.5)" in render_claims(self.make())

    def test_markdown_mode(self):
        assert "|" in render_claims(self.make(), markdown=True)


class TestRenderTable2:
    def make(self):
        return Table2Result(
            cells=[Table2Cell(2, 20, 0.06, 0.02)],
            pcc_standin="PCC-like",
        )

    def test_improvement_shown_with_x_suffix(self):
        text = render_table2(self.make())
        assert "3.00x" in text

    def test_summary_mentions_paper_values(self):
        text = render_table2(self.make())
        assert "paper: 1.92x" in text
        assert "all cells: True" in text


class TestRenderFigure1:
    def test_excerpt_is_bounded(self):
        result = Figure1Result(surface=figure1_surface(), empirical=[])
        text = render_figure1(result, max_surface_rows=5)
        # Header + separator + at most 5 rows for the surface excerpt.
        surface_block = text.split("\n\n")[0]
        assert len(surface_block.splitlines()) <= 8

    def test_reports_non_domination(self):
        result = Figure1Result(surface=figure1_surface([1.0], [0.5]))
        assert "mutually non-dominated: True" in render_figure1(result)


class TestRenderEmulab:
    def make(self):
        cell = CellMeasurement(
            protocol="reno", efficiency=0.9, loss_avoidance=0.01,
            fairness=0.95, convergence=0.66, tcp_friendliness=1.0,
        )
        return EmulabResult(
            measurements={"n=2,bw=20Mbps,buf=100": [cell]},
            checks=[
                HierarchyCheck("n=2,bw=20Mbps,buf=100", "efficiency",
                               "cubic", "reno", True),
                HierarchyCheck("n=2,bw=20Mbps,buf=100", "fairness",
                               "reno", "scalable", False),
            ],
        )

    def test_agreement_summary(self):
        text = render_emulab(self.make())
        assert "50.0%" in text

    def test_disagreements_listed(self):
        text = render_emulab(self.make())
        assert "DISAGREES" in text
        assert "reno >= scalable" in text

    def test_agreement_by_metric(self):
        result = self.make()
        by_metric = result.agreement_by_metric()
        assert by_metric["efficiency"] == 1.0
        assert by_metric["fairness"] == 0.0

    def test_jsonable_structure(self):
        payload = self.make().to_jsonable()
        assert payload["agreement"] == 0.5
        assert "n=2,bw=20Mbps,buf=100" in payload["cells"]
