"""``repro report``: HTML/text rendering of the benchmark summary."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.report_html import (
    render_html,
    render_text,
    write_html_report,
)

SUMMARY = {
    "environment": {"python": "3.12", "numpy": "2.0"},
    "bench_figure1": {"status": "passed", "wall_s": 2.5},
    "bench_table2": {
        "status": "skipped",
        "wall_s": 0.0,
        "reason": "every benchmark in the module is marked @slow",
    },
    "figure1_batched": {"speedup": 26.4, "serial_s": 5.3, "batched_s": 0.2},
    "claims": {"all_hold": True},
}
BASELINES = {"bench_figure1": 5.0}


class TestRenderHtml:
    def test_self_contained_page(self):
        page = render_html(SUMMARY, BASELINES)
        assert page.startswith("<!DOCTYPE html>")
        assert "<style>" in page and "http" not in page.split("<style>")[1].split("</style>")[0]
        assert "bench_figure1" in page
        assert "26.40" in page  # headline card
        assert "2.00&times;" in page  # 5.0 baseline / 2.5 wall
        assert "claims" in page  # detail section

    def test_escapes_hostile_names(self):
        page = render_html({"<script>": {"status": "passed", "wall_s": 1.0}})
        assert "<script>" not in page
        assert "&lt;script&gt;" in page

    def test_missing_baselines_render_dashes(self):
        page = render_html(SUMMARY)
        assert "&mdash;" in page

    def test_zero_wall_does_not_divide(self):
        page = render_html(
            {"bench_x": {"status": "skipped", "wall_s": 0.0}},
            {"bench_x": 3.0},
        )
        assert "bench_x" in page

    def test_skip_reason_is_rendered_and_escaped(self):
        page = render_html(SUMMARY)
        assert "marked @slow" in page
        hostile = render_html({
            "bench_x": {"status": "skipped", "wall_s": 0.0,
                        "reason": "<img src=x>"},
        })
        assert "<img" not in hostile
        assert "&lt;img" in hostile


class TestRenderText:
    def test_table_and_headlines(self):
        text = render_text(SUMMARY, BASELINES)
        assert "bench_figure1" in text
        assert "2.00x" in text
        assert "figure1_batched: 26.40x speedup" in text

    def test_skip_reason_follows_the_row(self):
        text = render_text(SUMMARY, BASELINES)
        (row,) = [l for l in text.splitlines() if l.startswith("bench_table2")]
        assert "(every benchmark in the module is marked @slow)" in row


class TestWriteAndCli:
    @pytest.fixture
    def summary_path(self, tmp_path):
        path = tmp_path / "summary.json"
        path.write_text(json.dumps(SUMMARY), encoding="utf-8")
        (tmp_path / "baselines.json").write_text(
            json.dumps(BASELINES), encoding="utf-8"
        )
        return path

    def test_write_html_report(self, tmp_path, summary_path):
        out = write_html_report(
            summary_path, tmp_path / "deep" / "report.html",
            tmp_path / "baselines.json",
        )
        page = out.read_text(encoding="utf-8")
        assert "bench_figure1" in page and "2.00&times;" in page

    def test_cli_text(self, capsys, summary_path):
        code = main(["report", "--summary", str(summary_path),
                     "--baselines", str(summary_path.parent / "baselines.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert "bench_figure1" in out

    def test_cli_html(self, capsys, tmp_path, summary_path):
        out_path = tmp_path / "report.html"
        code = main(["report", "--summary", str(summary_path),
                     "--html", str(out_path)])
        assert code == 0
        assert out_path.is_file()
        assert str(out_path) in capsys.readouterr().out

    def test_cli_missing_summary(self, tmp_path, capsys):
        code = main(["report", "--summary", str(tmp_path / "absent.json")])
        assert code == 1
        assert "absent.json" in capsys.readouterr().err
