"""Report rendering and JSON persistence (repro.experiments.report / .results)."""

import math

import pytest

from repro.experiments.report import Table, format_cell, render_table
from repro.experiments.results import load_result, save_result


class TestFormatCell:
    def test_none_dash(self):
        assert format_cell(None) == "-"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_float_precision(self):
        assert format_cell(1.23456, precision=3) == "1.235"

    def test_nan_and_inf(self):
        assert format_cell(math.nan) == "-"
        assert format_cell(math.inf) == "inf"
        assert format_cell(-math.inf) == "-inf"

    def test_tiny_values_use_scientific(self):
        assert "e" in format_cell(4.9e-4, precision=3)

    def test_strings_pass_through(self):
        assert format_cell("reno") == "reno"


class TestTable:
    def test_row_length_validated(self):
        table = Table(title="t", headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_text_rendering_aligns_columns(self):
        table = Table(title="demo", headers=["name", "value"])
        table.add_row("x", 1.0)
        table.add_row("longer-name", 2.0)
        text = table.to_text()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "-+-" in lines[2]
        # All body lines share the same width.
        assert len(lines[3]) == len(lines[4])

    def test_markdown_rendering(self):
        table = Table(title="demo", headers=["a", "b"]).add_row(1, 2)
        md = table.to_markdown()
        assert "| a | b |" in md
        assert "|---|---|" in md
        assert md.startswith("**demo**")

    def test_render_table_dispatch(self):
        table = Table(title="t", headers=["a"]).add_row(1)
        assert render_table(table, markdown=True).startswith("**")
        assert render_table(table, markdown=False).startswith("t")

    def test_add_row_chains(self):
        table = Table(title="t", headers=["a"])
        assert table.add_row(1) is table


class TestResultsIO:
    def test_roundtrip_plain_dict(self, tmp_path):
        payload = {"alpha": 0.5, "names": ["a", "b"], "count": 3, "flag": True}
        path = save_result(payload, tmp_path / "result.json")
        assert load_result(path) == payload

    def test_special_floats_roundtrip(self, tmp_path):
        payload = {"nan": math.nan, "inf": math.inf, "ninf": -math.inf}
        path = save_result(payload, tmp_path / "result.json")
        loaded = load_result(path)
        assert math.isnan(loaded["nan"])
        assert loaded["inf"] == math.inf
        assert loaded["ninf"] == -math.inf

    def test_nested_structures(self, tmp_path):
        payload = {"rows": [{"x": 1.0}, {"x": [2.0, math.inf]}]}
        loaded = load_result(save_result(payload, tmp_path / "n.json"))
        assert loaded["rows"][1]["x"][1] == math.inf

    def test_creates_parent_directories(self, tmp_path):
        path = save_result({"a": 1}, tmp_path / "deep" / "dir" / "x.json")
        assert path.exists()

    def test_objects_with_to_jsonable(self, tmp_path):
        class Result:
            def to_jsonable(self):
                return {"score": 0.9}

        loaded = load_result(save_result(Result(), tmp_path / "o.json"))
        assert loaded == {"score": 0.9}

    def test_unserializable_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_result({"fn": lambda: None}, tmp_path / "bad.json")

    def test_experiment_result_roundtrip(self, tmp_path):
        # A real experiment result survives the JSON round trip.
        from repro.core.theory.pareto import figure1_surface
        from repro.experiments.figure1 import Figure1Result

        result = Figure1Result(surface=figure1_surface([1.0], [0.5]))
        loaded = load_result(save_result(result, tmp_path / "fig1.json"))
        assert loaded["surface"][0]["friendliness"] == pytest.approx(1.0)
