"""Unit tests for the runtime sanitizer (``repro.debug``).

Each test corrupts one simulator invariant directly — a clock pushed into
the past, a leaky packet counter, a protocol proposing NaN — and asserts
that the matching named check trips with a :class:`DebugCheckError`.
"""

from __future__ import annotations

import heapq
import math

import numpy as np
import pytest

from repro import debug
from repro.model.dynamics import _validate_trace
from repro.model.sender import Observation
from repro.model.trace import SimulationTrace
from repro.packetsim.engine import EventKind, EventScheduler
from repro.packetsim.host import Flow
from repro.packetsim.packet import PacketPool
from repro.packetsim.queue import BottleneckQueue
from repro.protocols.base import Protocol

_CALLBACK = int(EventKind.CALLBACK)


def _noop(*_args) -> None:
    return None


# ---------------------------------------------------------------- debug API
def test_env_var_controls_default(monkeypatch):
    for value, expected in [("1", True), ("true", True), ("on", True),
                            ("", False), ("0", False), ("false", False),
                            ("off", False)]:
        monkeypatch.setenv(debug.ENV_VAR, value)
        assert debug._from_env() is expected, value
    monkeypatch.delenv(debug.ENV_VAR)
    assert debug._from_env() is False


def test_checks_context_manager_restores_state():
    assert debug.enabled()  # the suite-wide fixture turned them on
    with debug.checks(False):
        assert not debug.enabled()
        with debug.checks(True):
            assert debug.enabled()
        assert not debug.enabled()
    assert debug.enabled()


def test_fail_names_the_invariant():
    with pytest.raises(debug.DebugCheckError, match=r"\[some-invariant\]"):
        debug.fail("some-invariant", "details here")
    # DebugCheckError is an AssertionError so plain pytest.raises works too.
    assert issubclass(debug.DebugCheckError, AssertionError)


# ------------------------------------------------------------- clock checks
def test_corrupted_rail_event_trips_monotonic_clock():
    scheduler = EventScheduler()
    rail = scheduler.rail(0.5)
    scheduler.run_until(1.0)
    # Bypass Rail.push (which guards ordering) and plant a past-time event.
    rail._events.append((0.25, 10**9, _CALLBACK, _noop, None))
    with pytest.raises(debug.DebugCheckError, match=r"\[monotonic-clock\]"):
        scheduler.run_until(2.0)


def test_corrupted_heap_event_trips_monotonic_clock():
    scheduler = EventScheduler()
    scheduler.run_until(1.0)
    heapq.heappush(scheduler._heap, (0.25, 10**9, _CALLBACK, _noop, None))
    with pytest.raises(debug.DebugCheckError, match=r"\[monotonic-clock\]"):
        scheduler.run_until(2.0)


# ------------------------------------------------------------- queue checks
def _queue(scheduler: EventScheduler, capacity: int = 2) -> BottleneckQueue:
    return BottleneckQueue(scheduler, bandwidth=100.0, capacity=capacity,
                           on_departure=_noop, on_drop=_noop)


def test_corrupted_counter_trips_packet_conservation():
    scheduler = EventScheduler()
    queue = _queue(scheduler)
    pool = PacketPool()
    queue.arrive(pool.acquire(0, 0, 0.0, 0))
    queue.stats.enqueued += 5  # pretend packets entered that never did
    with pytest.raises(debug.DebugCheckError, match=r"\[packet-conservation\]"):
        scheduler.run_until(1.0)


def test_overfull_buffer_trips_queue_occupancy():
    scheduler = EventScheduler()
    queue = _queue(scheduler, capacity=2)
    pool = PacketPool()
    # Stuff the buffer behind the droptail check's back, then arrive once.
    queue._buffer.extend(pool.acquire(0, seq, 0.0, 0) for seq in range(3))
    with pytest.raises(debug.DebugCheckError, match=r"\[queue-occupancy\]"):
        queue.arrive(pool.acquire(0, 99, 0.0, 0))


def test_clean_queue_run_passes_checks():
    scheduler = EventScheduler()
    queue = _queue(scheduler, capacity=2)
    pool = PacketPool()
    for seq in range(5):
        queue.arrive(pool.acquire(0, seq, 0.0, 0))
    scheduler.run_until(1.0)
    assert queue.stats.departed == queue.stats.enqueued


# -------------------------------------------------------------- flow checks
class _NaNProtocol(Protocol):
    def next_window(self, obs: Observation) -> float:
        return math.nan


def _flow(protocol: Protocol | None = None) -> tuple[EventScheduler, Flow]:
    scheduler = EventScheduler()
    flow = Flow(flow_id=0, protocol=protocol or _NaNProtocol(),
                scheduler=scheduler, transmit=_noop)
    return scheduler, flow


def test_double_counted_ack_trips_flow_accounting():
    _scheduler, flow = _flow()
    packet = PacketPool().acquire(0, 0, 0.0, 0)
    flow.inflight = 0  # an ACK with nothing in flight is double-counting
    with pytest.raises(debug.DebugCheckError, match=r"\[flow-accounting\]"):
        flow.on_ack(packet)


def test_negative_rtt_trips_flow_accounting():
    _scheduler, flow = _flow()
    packet = PacketPool().acquire(0, 0, 5.0, 0)  # "sent" in the future
    flow.inflight = 1
    with pytest.raises(debug.DebugCheckError, match=r"\[flow-accounting\]"):
        flow.on_ack(packet)


def test_double_counted_loss_trips_flow_accounting():
    _scheduler, flow = _flow()
    packet = PacketPool().acquire(0, 0, 0.0, 0)
    flow.inflight = 0
    with pytest.raises(debug.DebugCheckError, match=r"\[flow-accounting\]"):
        flow.on_loss(packet)


def test_nan_window_from_protocol_trips_window_bounds():
    _scheduler, flow = _flow(_NaNProtocol())
    packet = PacketPool().acquire(0, 0, 0.0, 0)
    flow.inflight = 1
    flow._round(0).sent = 1  # round complete once this ACK lands
    with pytest.raises(debug.DebugCheckError, match=r"\[window-bounds\]"):
        flow.on_ack(packet)


def test_checks_off_lets_corruption_pass_silently():
    with debug.checks(False):
        _scheduler, flow = _flow()
        packet = PacketPool().acquire(0, 0, 0.0, 0)
        flow.inflight = 0
        flow.on_ack(packet)  # no DebugCheckError
        assert flow.stats.packets_acked == 1


# ------------------------------------------------------------- trace checks
def _trace(**overrides) -> SimulationTrace:
    steps, n = 4, 2
    values = dict(
        windows=np.ones((steps, n)),
        observed_loss=np.zeros((steps, n)),
        congestion_loss=np.zeros(steps),
        rtts=np.full(steps, 0.05),
        capacities=np.full(steps, 100.0),
        pipe_limits=np.full(steps, 5.0),
        base_rtts=np.full(steps, 0.05),
    )
    values.update(overrides)
    return SimulationTrace(**values)


def test_clean_trace_passes_validation():
    _validate_trace(_trace())
    # NaN windows are legal: senders that have not started yet.
    windows = np.ones((4, 2))
    windows[0, :] = np.nan
    _validate_trace(_trace(windows=windows, observed_loss=windows * 0))


@pytest.mark.parametrize("corruption,invariant", [
    ({"windows": np.full((4, 2), np.inf)}, "trace-finite"),
    ({"congestion_loss": np.array([0.0, 1.5, 0.0, 0.0])}, "trace-loss-range"),
    ({"congestion_loss": np.array([0.0, -0.1, 0.0, 0.0])}, "trace-loss-range"),
    ({"observed_loss": np.full((4, 2), np.inf)}, "trace-loss-range"),
    ({"rtts": np.array([0.05, 0.0, 0.05, 0.05])}, "trace-finite"),
    ({"capacities": np.full(4, np.inf)}, "trace-finite"),
])
def test_corrupted_trace_trips_named_check(corruption, invariant):
    with pytest.raises(debug.DebugCheckError, match=rf"\[{invariant}\]"):
        _validate_trace(_trace(**corruption))
