"""Time-series reductions (repro.analysis.stats)."""

import numpy as np
import pytest

from repro.analysis.stats import (
    convergence_alpha,
    detect_settling_step,
    jain_index,
    longest_loss_free_run,
    loss_free_runs,
    min_over_max,
    relative_band,
    tail_mean,
)


class TestTailMean:
    def test_constant_series(self):
        assert tail_mean(np.full(10, 3.0)) == pytest.approx(3.0)

    def test_uses_only_the_tail(self):
        series = np.array([0.0] * 5 + [10.0] * 5)
        assert tail_mean(series, 0.5) == pytest.approx(10.0)

    def test_nan_aware(self):
        series = np.array([np.nan, np.nan, 2.0, 4.0])
        assert tail_mean(series, 0.5) == pytest.approx(3.0)

    def test_all_nan_tail_raises(self):
        with pytest.raises(ValueError):
            tail_mean(np.array([1.0, np.nan, np.nan]), 0.5)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            tail_mean(np.ones(5), 0.0)

    def test_empty_series(self):
        with pytest.raises(ValueError):
            tail_mean(np.array([]))


class TestJain:
    def test_equal_shares(self):
        assert jain_index(np.array([5.0, 5.0, 5.0])) == pytest.approx(1.0)

    def test_single_hog(self):
        assert jain_index(np.array([1.0, 0.0, 0.0, 0.0])) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_index(np.zeros(3)) == 1.0

    def test_scale_invariant(self):
        values = np.array([1.0, 2.0, 3.0])
        assert jain_index(values) == pytest.approx(jain_index(values * 100))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index(np.array([-1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index(np.array([]))


class TestMinOverMax:
    def test_equal(self):
        assert min_over_max(np.array([2.0, 2.0])) == 1.0

    def test_ratio(self):
        assert min_over_max(np.array([1.0, 4.0])) == pytest.approx(0.25)

    def test_zero_max(self):
        assert min_over_max(np.zeros(2)) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            min_over_max(np.array([-1.0]))


class TestConvergenceAlpha:
    def test_constant_series_is_one(self):
        assert convergence_alpha(np.full(10, 5.0)) == pytest.approx(1.0)

    def test_aimd_sawtooth_matches_table1(self):
        # A sawtooth between b*W and W scores exactly 2b/(1+b).
        b, W = 0.5, 100.0
        series = np.array([b * W, W] * 20)
        assert convergence_alpha(series) == pytest.approx(2 * b / (1 + b))

    @pytest.mark.parametrize("b", [0.3, 0.7, 0.875])
    def test_sawtooth_general_b(self, b):
        series = np.linspace(b * 100, 100, 50)
        assert convergence_alpha(series) == pytest.approx(2 * b / (1 + b))

    def test_zero_series(self):
        assert convergence_alpha(np.zeros(5)) == 1.0

    def test_nan_entries_ignored(self):
        series = np.array([np.nan, 50.0, 100.0])
        assert convergence_alpha(series) == pytest.approx(2 * 50 / 150)

    def test_relative_band_complements(self):
        series = np.array([50.0, 100.0])
        assert relative_band(series) == pytest.approx(1 - convergence_alpha(series))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            convergence_alpha(np.array([np.nan]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            convergence_alpha(np.array([-1.0, 1.0]))


class TestSettling:
    def test_step_change_detected(self):
        series = np.array([0.0] * 10 + [100.0] * 20)
        assert detect_settling_step(series, band=0.1, min_hold=5) == 10

    def test_never_settles(self):
        series = np.array([0.0, 1000.0] * 10)
        assert detect_settling_step(series, band=0.01, min_hold=5) is None

    def test_settled_from_start(self):
        assert detect_settling_step(np.full(20, 7.0), min_hold=5) == 0

    def test_too_short(self):
        assert detect_settling_step(np.ones(3), min_hold=10) is None

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            detect_settling_step(np.ones(20), band=0.0)


class TestLossFreeRuns:
    def test_no_loss_is_one_run(self):
        assert loss_free_runs(np.zeros(5)) == [(0, 5)]

    def test_all_loss_is_no_runs(self):
        assert loss_free_runs(np.ones(5)) == []

    def test_interleaved(self):
        series = np.array([0, 0, 0.1, 0, 0, 0, 0.2, 0])
        assert loss_free_runs(series) == [(0, 2), (3, 6), (7, 8)]

    def test_longest_run(self):
        series = np.array([0, 0.1, 0, 0, 0, 0.1])
        assert longest_loss_free_run(series) == (2, 5)

    def test_longest_run_all_lossy(self):
        assert longest_loss_free_run(np.ones(3)) == (0, 0)
