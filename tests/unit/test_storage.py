"""Trace persistence (repro.storage)."""

import numpy as np
import pytest

from repro.model.dynamics import run_homogeneous
from repro.protocols.aimd import AIMD
from repro.storage import load_trace, save_trace, trace_to_csv


@pytest.fixture()
def trace(emulab_link):
    return run_homogeneous(emulab_link, AIMD(1, 0.5), 2, 200)


class TestNpzRoundtrip:
    def test_lossless(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "run.npz")
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.windows, trace.windows)
        np.testing.assert_array_equal(loaded.congestion_loss, trace.congestion_loss)
        np.testing.assert_array_equal(loaded.rtts, trace.rtts)

    def test_suffix_added(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "run")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_derived_series_survive(self, trace, tmp_path):
        loaded = load_trace(save_trace(trace, tmp_path / "run.npz"))
        np.testing.assert_allclose(loaded.utilization(), trace.utilization())
        np.testing.assert_allclose(loaded.total_window(), trace.total_window())

    def test_nan_entries_preserved(self, emulab_link, tmp_path):
        from repro.model.dynamics import FluidSimulator, SimulationConfig
        from repro.model.events import EventSchedule

        schedule = EventSchedule().add_sender_start(1, 50)
        sim = FluidSimulator(
            emulab_link, [AIMD(1, 0.5)] * 2, SimulationConfig(schedule=schedule)
        )
        original = sim.run(100)
        loaded = load_trace(save_trace(original, tmp_path / "late.npz"))
        assert np.isnan(loaded.windows[:50, 1]).all()

    def test_missing_field_rejected(self, trace, tmp_path):
        path = tmp_path / "broken.npz"
        np.savez(path, windows=trace.windows, format_version=np.array(1))
        with pytest.raises(ValueError, match="missing"):
            load_trace(path)

    def test_wrong_version_rejected(self, trace, tmp_path):
        path = tmp_path / "old.npz"
        arrays = {
            name: getattr(trace, name)
            for name in (
                "windows", "observed_loss", "congestion_loss", "rtts",
                "capacities", "pipe_limits", "base_rtts",
            )
        }
        np.savez(path, format_version=np.array(99), **arrays)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)


class TestCsvExport:
    def test_header_and_row_count(self, trace, tmp_path):
        path = trace_to_csv(trace, tmp_path / "run.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == trace.steps + 1
        header = lines[0].split(",")
        assert header[:2] == ["step", "congestion_loss"]
        assert "window_0" in header and "window_1" in header

    def test_values_roundtrip_exactly(self, trace, tmp_path):
        import csv as csv_module

        path = trace_to_csv(trace, tmp_path / "run.csv")
        with path.open() as handle:
            rows = list(csv_module.DictReader(handle))
        t = 17
        assert float(rows[t]["window_0"]) == trace.windows[t, 0]
        assert float(rows[t]["rtt"]) == trace.rtts[t]
