"""The sharded store's entry-kind index, flat migration, and race guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import ScenarioSpec, run_spec
from repro.model.link import Link
from repro.perf.cache import TraceCache, kind_from_members
from repro.perf.store import (
    prune_cache,
    stats_by_kind,
    store_unified_trace,
    unified_key,
)
from repro.protocols.aimd import AIMD

FLUID_KEY = "ab" * 32
PACKET_KEY = "cd" * 32


def _spec(alpha: float = 1.0) -> ScenarioSpec:
    return ScenarioSpec(
        protocols=[AIMD(alpha, 0.5)] * 2,
        link=Link.from_mbps(20, 42, 100),
        steps=32,
    )


def _populate(tmp_path) -> tuple[TraceCache, str]:
    """A store holding one entry of each kind; returns it plus the unified key."""
    cache = TraceCache(tmp_path)
    spec = _spec()
    trace = run_spec(spec, "fluid", use_cache=False)
    key = unified_key("fluid", spec)
    assert key is not None
    store_unified_trace(cache, key, trace)
    cache.put(FLUID_KEY, trace)
    cache.put_arrays(
        PACKET_KEY, {"format": np.array(1), "meta": np.zeros(3)}
    )
    return cache, key


class TestKindFromMembers:
    def test_recognized_kinds(self):
        assert kind_from_members({"unified_backend", "windows"}, "fluid") == \
            "unified:fluid"
        assert kind_from_members({"format_version", "windows"}) == "fluid"
        assert kind_from_members({"format", "meta"}) == "packet"
        assert kind_from_members({"mystery"}) == "unknown"
        # A unified entry whose backend member the caller did not decode.
        assert kind_from_members({"unified_backend"}) == "unknown"


class TestIndex:
    def test_puts_write_index_records(self, tmp_path):
        cache, key = _populate(tmp_path)
        index = cache.read_index()
        assert index[key] == "unified:fluid"
        assert index[FLUID_KEY] == "fluid"
        assert index[PACKET_KEY] == "packet"

    def test_stats_by_kind_opens_no_payloads(self, tmp_path, monkeypatch):
        cache, key = _populate(tmp_path)

        def _boom(*args, **kwargs):
            raise AssertionError("stats_by_kind opened a payload")

        monkeypatch.setattr("repro.perf.store.np.load", _boom)
        breakdown = stats_by_kind(cache)
        assert breakdown["unified:fluid"]["entries"] == 1
        assert breakdown["fluid"]["entries"] == 1
        assert breakdown["packet"]["entries"] == 1
        assert all(info["bytes"] > 0 for info in breakdown.values())

    def test_missing_index_self_heals(self, tmp_path, monkeypatch):
        cache, _ = _populate(tmp_path)
        cache.index_path.unlink()
        first = stats_by_kind(cache)  # classifies payloads, re-appends
        assert sum(info["entries"] for info in first.values()) == 3
        monkeypatch.setattr(
            "repro.perf.store.np.load",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("reopened")),
        )
        assert stats_by_kind(cache) == first

    def test_torn_and_foreign_lines_are_skipped(self, tmp_path):
        cache, key = _populate(tmp_path)
        with open(cache.index_path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "aa", "kind":\n')   # torn mid-record
            handle.write('[1, 2, 3]\n')               # valid JSON, wrong shape
            handle.write("\n")
        index = cache.read_index()
        assert index[key] == "unified:fluid"
        assert "aa" not in index

    def test_prune_compacts_stale_records(self, tmp_path):
        cache, _ = _populate(tmp_path)
        assert len(cache.read_index()) == 3
        report = prune_cache(cache, max_bytes=0)
        assert report["remaining_entries"] == 0
        assert cache.read_index() == {}

    def test_dry_run_prune_leaves_index_alone(self, tmp_path):
        cache, _ = _populate(tmp_path)
        before = cache.index_path.read_bytes()
        prune_cache(cache, max_bytes=0, dry_run=True)
        assert cache.index_path.read_bytes() == before


class TestFlatMigration:
    def _flatten(self, cache: TraceCache) -> list[str]:
        """Rewrite the store into the legacy flat layout (no index)."""
        keys = []
        for path in sorted(cache.directory.glob("*/*.npz")):
            path.rename(cache.directory / path.name)
            path.parent.rmdir()
            keys.append(path.stem)
        cache.index_path.unlink(missing_ok=True)
        return keys

    def test_lookup_relocates_flat_entry(self, tmp_path):
        cache, key = _populate(tmp_path)
        self._flatten(cache)
        arrays = cache.get_arrays(key)
        assert arrays is not None and "unified_backend" in arrays
        assert (cache.directory / key[:2] / f"{key}.npz").is_file()
        assert not (cache.directory / f"{key}.npz").exists()

    def test_entries_sweeps_stragglers(self, tmp_path):
        cache, _ = _populate(tmp_path)
        keys = self._flatten(cache)
        entries = cache.entries()
        assert sorted(path.stem for path in entries) == sorted(keys)
        assert all(path.parent != cache.directory for path in entries)
        assert cache.migrate_flat_entries() == 0  # nothing left to move

    def test_flat_store_survives_stats_and_get(self, tmp_path):
        cache, key = _populate(tmp_path)
        spec_trace = cache.get(FLUID_KEY)
        self._flatten(cache)
        breakdown = stats_by_kind(cache)
        assert sum(info["entries"] for info in breakdown.values()) == 3
        again = cache.get(FLUID_KEY)
        assert again is not None
        assert np.array_equal(
            np.asarray(spec_trace.windows), np.asarray(again.windows)
        )

    def test_temp_files_are_not_migrated(self, tmp_path):
        cache, _ = _populate(tmp_path)
        junk = cache.directory / ".tmp-999-deadbeef.npz"
        junk.write_bytes(b"partial write")
        cache.migrate_flat_entries()
        assert junk.is_file()  # left where the writer put it


class TestRaceGuards:
    def test_stats_by_kind_skips_vanished_entries(self, tmp_path, monkeypatch):
        cache, _ = _populate(tmp_path)
        real = cache.entries()
        ghost = cache.directory / "ee" / ("ee" * 32 + ".npz")
        monkeypatch.setattr(
            TraceCache, "entries", lambda self: real + [ghost]
        )
        breakdown = stats_by_kind(cache)
        assert sum(info["entries"] for info in breakdown.values()) == len(real)

    def test_prune_skips_vanished_entries(self, tmp_path, monkeypatch):
        cache, _ = _populate(tmp_path)
        real = cache.entries()
        ghost = cache.directory / "ee" / ("ee" * 32 + ".npz")
        monkeypatch.setattr(
            TraceCache, "entries", lambda self: real + [ghost]
        )
        report = prune_cache(cache, max_bytes=0)
        assert report["removed"] == len(real)

    def test_index_append_survives_unwritable_store(self, tmp_path):
        cache = TraceCache(tmp_path / "nope" / "deeper")
        cache.index_append("aa" * 32, "fluid", 1)  # no directory: no raise
        assert cache.read_index() == {}


class TestCapWarning:
    def test_bad_values_warn_once_per_value(self, monkeypatch):
        from repro.perf.store import CACHE_MAX_MB_ENV, size_cap_bytes

        monkeypatch.setattr("repro.perf.store._warned_cap_value", None)
        monkeypatch.setenv(CACHE_MAX_MB_ENV, "lots")
        with pytest.warns(RuntimeWarning, match="not a number"):
            assert size_cap_bytes() is None
        import warnings as _warnings

        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always")
            assert size_cap_bytes() is None  # same value: silent
        assert caught == []
        monkeypatch.setenv(CACHE_MAX_MB_ENV, "-3")
        with pytest.warns(RuntimeWarning, match="negative"):
            assert size_cap_bytes() is None

    def test_valid_values_do_not_warn(self, monkeypatch):
        import warnings as _warnings

        from repro.perf.store import CACHE_MAX_MB_ENV, size_cap_bytes

        monkeypatch.setenv(CACHE_MAX_MB_ENV, "8")
        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always")
            assert size_cap_bytes() == 8 * 1024 * 1024
        assert caught == []
