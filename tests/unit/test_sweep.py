"""The generic sweep harness (repro.experiments.sweep)."""

import pytest

from repro.experiments.sweep import Sweep, SweepRow


class TestCells:
    def test_cross_product(self):
        sweep = Sweep(axes={"a": [1, 2], "b": ["x", "y", "z"]},
                      measure=lambda a, b: None)
        assert sweep.size() == 6
        cells = list(sweep.cells())
        assert cells[0] == {"a": 1, "b": "x"}
        assert cells[-1] == {"a": 2, "b": "z"}

    def test_deterministic_order(self):
        sweep = Sweep(axes={"a": [1, 2], "b": [3, 4]}, measure=lambda a, b: None)
        assert list(sweep.cells()) == list(sweep.cells())

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            Sweep(axes={}, measure=lambda: None)
        with pytest.raises(ValueError):
            Sweep(axes={"a": []}, measure=lambda a: None)


class TestRun:
    def test_measures_every_cell(self):
        sweep = Sweep(axes={"x": [1, 2, 3]}, measure=lambda x: x * 10)
        rows = sweep.run()
        assert [row.value for row in rows] == [10, 20, 30]
        assert rows[1].parameter("x") == 2

    def test_errors_propagate_by_default(self):
        def boom(x):
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            Sweep(axes={"x": [1]}, measure=boom).run()

    def test_skip_errors_records_them(self):
        def sometimes(x):
            if x == 2:
                raise RuntimeError("nope")
            return x

        sweep = Sweep(axes={"x": [1, 2, 3]}, measure=sometimes, skip_errors=True)
        rows = sweep.run()
        assert [row.value for row in rows] == [1, None, 3]
        assert len(sweep.errors) == 1
        assert sweep.errors[0][0] == {"x": 2}

    def test_real_measurement(self, emulab_link):
        # A miniature Table 2-style sweep through the actual simulator.
        from repro.experiments.table2 import measure_friendliness
        from repro.protocols.aimd import AIMD

        sweep = Sweep(
            axes={"a": [1.0, 2.0], "bw": [20]},
            measure=lambda a, bw: measure_friendliness(AIMD(a, 0.5), 2, bw,
                                                       steps=800),
        )
        rows = sweep.run()
        # Larger increment -> less friendly.
        assert rows[0].value > rows[1].value


class TestAggregateAndRender:
    def make_rows(self):
        sweep = Sweep(
            axes={"a": [1, 2], "b": [10, 20]},
            measure=lambda a, b: a * b,
        )
        return sweep.run()

    def test_aggregate_groups_and_reduces(self):
        rows = self.make_rows()
        by_a = Sweep.aggregate(rows, by=("a",), reduce=sum)
        assert by_a == {(1,): 30, (2,): 60}

    def test_aggregate_max(self):
        rows = self.make_rows()
        by_b = Sweep.aggregate(rows, by=("b",), reduce=max)
        assert by_b == {(10,): 20, (20,): 40}

    def test_to_table(self):
        rows = self.make_rows()
        table = Sweep.to_table(rows, title="demo", value_label="product")
        assert table.headers == ["a", "b", "product"]
        assert len(table.rows) == 4

    def test_to_table_empty_rejected(self):
        with pytest.raises(ValueError):
            Sweep.to_table([], title="demo")

    def test_row_unknown_parameter(self):
        row = SweepRow(parameters=(("a", 1),), value=2)
        with pytest.raises(KeyError):
            row.parameter("b")
        assert row.as_dict() == {"a": 1, "value": 2}
