"""The generic sweep harness (repro.experiments.sweep)."""

import functools

import pytest

from repro.experiments.sweep import Sweep, SweepRow, workers_sweep_options


def _times(x, factor):
    """Module-level so it survives pickling into pool workers."""
    return x * factor


def _grid_value(x, y):
    return x * 10 + y


def _explode_on(x, bad):
    if x == bad:
        raise RuntimeError("nope")
    return x


class TestCells:
    def test_cross_product(self):
        sweep = Sweep(axes={"a": [1, 2], "b": ["x", "y", "z"]},
                      measure=lambda a, b: None)
        assert sweep.size() == 6
        cells = list(sweep.cells())
        assert cells[0] == {"a": 1, "b": "x"}
        assert cells[-1] == {"a": 2, "b": "z"}

    def test_deterministic_order(self):
        sweep = Sweep(axes={"a": [1, 2], "b": [3, 4]}, measure=lambda a, b: None)
        assert list(sweep.cells()) == list(sweep.cells())

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            Sweep(axes={}, measure=lambda: None)
        with pytest.raises(ValueError):
            Sweep(axes={"a": []}, measure=lambda a: None)


class TestRun:
    def test_measures_every_cell(self):
        sweep = Sweep(axes={"x": [1, 2, 3]}, measure=lambda x: x * 10)
        rows = sweep.run()
        assert [row.value for row in rows] == [10, 20, 30]
        assert rows[1].parameter("x") == 2

    def test_errors_propagate_by_default(self):
        def boom(x):
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            Sweep(axes={"x": [1]}, measure=boom).run()

    def test_skip_errors_records_them(self):
        def sometimes(x):
            if x == 2:
                raise RuntimeError("nope")
            return x

        sweep = Sweep(axes={"x": [1, 2, 3]}, measure=sometimes, skip_errors=True)
        rows = sweep.run()
        assert [row.value for row in rows] == [1, None, 3]
        assert len(sweep.errors) == 1
        assert sweep.errors[0][0] == {"x": 2}

    def test_errors_reset_between_runs(self):
        # Regression: errors from one run() used to pile up into the next.
        sweep = Sweep(
            axes={"x": [1, 2, 3]},
            measure=functools.partial(_explode_on, bad=2),
            skip_errors=True,
        )
        sweep.run()
        assert len(sweep.errors) == 1
        sweep.run()
        assert len(sweep.errors) == 1

    def test_errors_list_identity_preserved(self):
        sweep = Sweep(
            axes={"x": [2]},
            measure=functools.partial(_explode_on, bad=2),
            skip_errors=True,
        )
        held = sweep.errors
        sweep.run()
        assert held is sweep.errors and len(held) == 1

    def test_real_measurement(self, emulab_link):
        # A miniature Table 2-style sweep through the actual simulator.
        from repro.experiments.table2 import measure_friendliness
        from repro.protocols.aimd import AIMD

        sweep = Sweep(
            axes={"a": [1.0, 2.0], "bw": [20]},
            measure=lambda a, bw: measure_friendliness(AIMD(a, 0.5), 2, bw,
                                                       steps=800),
        )
        rows = sweep.run()
        # Larger increment -> less friendly.
        assert rows[0].value > rows[1].value


class TestParallel:
    def test_rows_identical_to_serial(self):
        axes = {"x": [1, 2, 3, 4], "y": [5, 6]}
        serial = Sweep(axes=axes, measure=_grid_value).run()
        parallel = Sweep(axes=axes, measure=_grid_value).run(
            parallel=True, max_workers=3
        )
        assert serial == parallel  # same values AND same order

    def test_parallel_flag_on_the_sweep_itself(self):
        sweep = Sweep(
            axes={"x": [1, 2, 3]},
            measure=functools.partial(_times, factor=2),
            parallel=True,
            max_workers=2,
        )
        assert [row.value for row in sweep.run()] == [2, 4, 6]

    def test_single_worker_falls_back_to_serial(self):
        sweep = Sweep(axes={"x": [1, 2]}, measure=functools.partial(_times, factor=2))
        assert sweep.run(parallel=True, max_workers=1) == sweep.run()

    def test_unpicklable_measure_falls_back_to_serial(self):
        sweep = Sweep(axes={"x": [1, 2, 3]}, measure=lambda x: x * 2)
        rows = sweep.run(parallel=True, max_workers=4)
        assert [row.value for row in rows] == [2, 4, 6]

    def test_errors_propagate_in_grid_order(self):
        sweep = Sweep(axes={"x": [1, 2, 3]},
                      measure=functools.partial(_explode_on, bad=2))
        with pytest.raises(RuntimeError):
            sweep.run(parallel=True, max_workers=2)

    def test_skip_errors_records_them_in_parallel(self):
        sweep = Sweep(
            axes={"x": [1, 2, 3]},
            measure=functools.partial(_explode_on, bad=2),
            skip_errors=True,
        )
        rows = sweep.run(parallel=True, max_workers=2)
        assert [row.value for row in rows] == [1, None, 3]
        assert len(sweep.errors) == 1
        assert sweep.errors[0][0] == {"x": 2}

    def test_real_measurement_parallel_matches_serial(self, emulab_link):
        # A miniature Table 2-sized grid through the actual simulator; the
        # values must be identical floats, not merely close.
        from repro.experiments.table2 import measure_friendliness
        from repro.protocols.robust_aimd import RobustAIMD

        measure = functools.partial(
            measure_friendliness, RobustAIMD(1, 0.8, 0.01), steps=300
        )
        axes = {"n_senders": [2, 3], "bandwidth_mbps": [20, 30]}
        serial = Sweep(axes=axes, measure=measure).run()
        parallel = Sweep(axes=axes, measure=measure).run(
            parallel=True, max_workers=2
        )
        assert serial == parallel


class TestWorkersSweepOptions:
    def test_none_means_serial(self):
        assert workers_sweep_options(None) == {"parallel": False}

    def test_one_means_serial(self):
        assert workers_sweep_options(1) == {"parallel": False}

    def test_many_enables_pool(self):
        assert workers_sweep_options(4) == {"parallel": True, "max_workers": 4}


class TestAggregateAndRender:
    def make_rows(self):
        sweep = Sweep(
            axes={"a": [1, 2], "b": [10, 20]},
            measure=lambda a, b: a * b,
        )
        return sweep.run()

    def test_aggregate_groups_and_reduces(self):
        rows = self.make_rows()
        by_a = Sweep.aggregate(rows, by=("a",), reduce=sum)
        assert by_a == {(1,): 30, (2,): 60}

    def test_aggregate_max(self):
        rows = self.make_rows()
        by_b = Sweep.aggregate(rows, by=("b",), reduce=max)
        assert by_b == {(10,): 20, (20,): 40}

    def test_to_table(self):
        rows = self.make_rows()
        table = Sweep.to_table(rows, title="demo", value_label="product")
        assert table.headers == ["a", "b", "product"]
        assert len(table.rows) == 4

    def test_to_table_empty_rejected(self):
        with pytest.raises(ValueError):
            Sweep.to_table([], title="demo")

    def test_row_unknown_parameter(self):
        row = SweepRow(parameters=(("a", 1),), value=2)
        with pytest.raises(KeyError):
            row.parameter("b")
        assert row.as_dict() == {"a": 1, "value": 2}
