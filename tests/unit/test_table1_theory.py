"""The closed forms of Table 1 (repro.core.theory.table1)."""

import math

import pytest

from repro.core.theory import table1

C, TAU, N = 70.0, 100.0, 2


class TestBuildingBlocks:
    def test_aimd_convergence(self):
        assert table1.aimd_convergence(0.5) == pytest.approx(1 / 1.5)
        with pytest.raises(ValueError):
            table1.aimd_convergence(1.0)

    def test_aimd_friendliness_reno_is_one(self):
        assert table1.aimd_friendliness(1.0, 0.5) == pytest.approx(1.0)

    def test_aimd_friendliness_monotone(self):
        # More aggressive (larger a, larger b) -> less friendly.
        assert table1.aimd_friendliness(2, 0.5) < table1.aimd_friendliness(1, 0.5)
        assert table1.aimd_friendliness(1, 0.8) < table1.aimd_friendliness(1, 0.5)

    def test_multiplicative_efficiency_caps_at_one(self):
        assert table1.multiplicative_efficiency(0.9, C, TAU) == 1.0
        assert table1.multiplicative_efficiency(0.3, C, 0.0) == pytest.approx(0.3)

    def test_additive_overshoot_loss(self):
        assert table1.additive_overshoot_loss(2.0, C, TAU) == pytest.approx(
            1 - 170 / 172
        )
        assert table1.additive_overshoot_loss(0.0, C, TAU) == 0.0


class TestAimdRow:
    def test_reno_row(self):
        row = table1.aimd_row(1.0, 0.5, C, TAU, N)
        assert row.worst_case.efficiency == pytest.approx(0.5)
        assert row.worst_case.fast_utilization == pytest.approx(1.0)
        assert row.worst_case.tcp_friendliness == pytest.approx(1.0)
        assert row.worst_case.fairness == 1.0
        assert row.worst_case.robustness == 0.0
        assert row.nuanced["efficiency"] == 1.0  # 0.5 * (1 + 100/70) > 1
        assert row.score("loss_avoidance") == pytest.approx(1 - 170 / 172)

    def test_score_prefers_nuanced(self):
        row = table1.aimd_row(1.0, 0.5, C, TAU, N)
        assert row.score("efficiency") == row.nuanced["efficiency"]
        assert row.score("fairness") == row.worst_case.fairness


class TestMimdRow:
    def test_scalable_row(self):
        row = table1.mimd_row(1.01, 0.875, C, TAU, N)
        assert math.isinf(row.worst_case.fast_utilization)
        assert row.worst_case.fairness == 0.0
        assert row.worst_case.loss_avoidance == pytest.approx(0.01 / 1.01)

    def test_printed_vs_derived_loss(self):
        # We implement both readings of the MIMD loss-avoidance cell.
        assert table1.mimd_loss_avoidance_printed(1.01) == pytest.approx(
            1.01 / 2.01
        )
        assert table1.mimd_loss_avoidance_derived(1.01) == pytest.approx(
            0.01 / 1.01
        )

    def test_nuanced_friendliness_shrinks_with_pipe(self):
        small = table1.mimd_friendliness_nuanced(1.01, 0.875, C, TAU)
        large = table1.mimd_friendliness_nuanced(1.01, 0.875, 10 * C, TAU)
        assert large < small

    def test_degenerate_tiny_link(self):
        assert math.isinf(table1.mimd_friendliness_nuanced(1.01, 0.5, 1.0, 0.0))


class TestBinRow:
    def test_iiad_row(self):
        row = table1.bin_row(1.0, 1.0, 1.0, 0.0, C, TAU, N)
        assert row.worst_case.fast_utilization == 0.0  # k > 0
        assert row.worst_case.tcp_friendliness == pytest.approx(math.sqrt(1.5))
        # Additive decrease at the operating point barely dents the window.
        assert row.nuanced["efficiency"] == 1.0
        assert row.nuanced["convergence"] > 0.98

    def test_k_zero_l_one_equals_aimd(self):
        bin_row = table1.bin_row(1.0, 0.5, 0.0, 1.0, C, TAU, N)
        aimd_row = table1.aimd_row(1.0, 0.5, C, TAU, N)
        assert bin_row.worst_case.fast_utilization == pytest.approx(1.0)
        assert bin_row.nuanced["loss_avoidance"] == pytest.approx(
            aimd_row.nuanced["loss_avoidance"]
        )
        assert bin_row.nuanced["convergence"] == pytest.approx(
            aimd_row.worst_case.convergence
        )

    def test_non_compatible_bin_scores_zero_friendliness(self):
        row = table1.bin_row(1.0, 0.5, 0.2, 0.3, C, TAU, N)
        assert row.worst_case.tcp_friendliness == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            table1.bin_row(0.0, 0.5, 1.0, 0.0, C, TAU, N)
        with pytest.raises(ValueError):
            table1.bin_row(1.0, 0.5, -1.0, 0.0, C, TAU, N)
        with pytest.raises(ValueError):
            table1.bin_row(1.0, 0.5, 1.0, 2.0, C, TAU, N)


class TestCubicRow:
    def test_kernel_cubic_row(self):
        row = table1.cubic_row(0.4, 0.8, C, TAU, N)
        assert row.worst_case.efficiency == pytest.approx(0.8)
        assert row.worst_case.fast_utilization == pytest.approx(0.4)
        assert row.score("loss_avoidance") == pytest.approx(
            1 - 170 / (170 + 2 * 0.4)
        )

    def test_friendliness_shrinks_with_pipe(self):
        small = table1.cubic_friendliness_nuanced(0.4, 0.8, C, TAU)
        large = table1.cubic_friendliness_nuanced(0.4, 0.8, 100 * C, TAU)
        assert large < small

    def test_friendliness_capped_at_parity(self):
        # Tiny c would push the expression past 1; the cap holds it there.
        assert table1.cubic_friendliness_nuanced(1e-5, 0.8, C, TAU) == 1.0


class TestRobustAimdRow:
    def test_paper_parameters(self):
        row = table1.robust_aimd_row(1.0, 0.8, 0.01, C, TAU, N)
        assert row.worst_case.robustness == pytest.approx(0.01)
        assert row.worst_case.fast_utilization == pytest.approx(1.0)
        # Loss-avoidance settles where the loss rate crosses epsilon.
        pipe = C + TAU
        expected = (pipe * 0.01 + 2 * 0.99) / (pipe + 2 * 0.99)
        assert row.nuanced["loss_avoidance"] == pytest.approx(expected)

    def test_friendliness_far_below_aimd(self):
        robust = table1.robust_aimd_row(1.0, 0.8, 0.01, C, TAU, N)
        plain = table1.aimd_row(1.0, 0.8, C, TAU, N)
        assert robust.nuanced["tcp_friendliness"] < 0.01 * plain.score(
            "tcp_friendliness"
        )

    def test_efficiency_boost_from_tolerance(self):
        # b/(1-eps) exceeds b: tolerating loss keeps the pipe fuller.
        row = table1.robust_aimd_row(1.0, 0.8, 0.2, C, 0.0, N)
        assert row.worst_case.efficiency == pytest.approx(1.0)  # 0.8/0.8 = 1

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            table1.robust_aimd_row(1.0, 0.8, 0.0, C, TAU, N)

    def test_theorem3_footnote_assumption(self):
        with pytest.raises(ValueError, match="C \\+ tau"):
            table1.robust_aimd_friendliness_nuanced(1e9, 0.8, 0.01, 1.0, 0.0)


class TestPaperTable:
    def test_five_rows(self):
        rows = table1.paper_table1(C, TAU, N)
        names = [row.protocol for row in rows]
        assert names == [
            "AIMD(1,0.5)",
            "MIMD(1.01,0.875)",
            "BIN(1,1,1,0)",
            "CUBIC(0.4,0.8)",
            "Robust-AIMD(1,0.8,0.01)",
        ]

    def test_only_robust_aimd_is_robust(self):
        rows = table1.paper_table1(C, TAU, N)
        robust = [row for row in rows if row.worst_case.robustness > 0]
        assert len(robust) == 1
        assert "Robust-AIMD" in robust[0].protocol

    def test_all_loss_based_latency_unbounded(self):
        for row in table1.paper_table1(C, TAU, N):
            assert math.isinf(row.worst_case.latency_avoidance)

    def test_link_validation(self):
        with pytest.raises(ValueError):
            table1.paper_table1(-1.0, TAU, N)
        with pytest.raises(ValueError):
            table1.paper_table1(C, TAU, 0)
