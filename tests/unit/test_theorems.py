"""Bound functions of Claim 1 and Theorems 1-5 (repro.core.theory.theorems)."""

import pytest

from repro.core.theory import theorems


class TestClaim1:
    def test_zero_loss_loss_based_must_not_fast_utilize(self):
        assert theorems.claim1_consistent(True, True, 0.0)
        assert not theorems.claim1_consistent(True, True, 0.5)

    def test_non_loss_based_unconstrained(self):
        assert theorems.claim1_consistent(False, True, 5.0)

    def test_lossy_protocols_unconstrained(self):
        assert theorems.claim1_consistent(True, False, 5.0)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            theorems.claim1_consistent(True, True, -1.0)


class TestTheorem1:
    def test_bound_formula(self):
        assert theorems.theorem1_efficiency_bound(0.5) == pytest.approx(1 / 3)
        assert theorems.theorem1_efficiency_bound(1.0) == pytest.approx(1.0)
        assert theorems.theorem1_efficiency_bound(0.0) == 0.0

    def test_bound_monotone_in_convergence(self):
        values = [theorems.theorem1_efficiency_bound(a) for a in (0.1, 0.5, 0.9)]
        assert values == sorted(values)

    def test_holds_checker(self):
        assert theorems.theorem1_holds(0.5, 1.0, 0.4)
        assert not theorems.theorem1_holds(0.9, 1.0, 0.5)

    def test_vacuous_without_fast_utilization(self):
        # Claim-1-style protocols (alpha = 0) are exempt.
        assert theorems.theorem1_holds(0.99, 0.0, 0.0)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            theorems.theorem1_efficiency_bound(1.5)


class TestTheorem2:
    def test_reno_point(self):
        assert theorems.theorem2_friendliness_bound(1.0, 0.5) == pytest.approx(1.0)

    def test_bound_decreases_with_alpha(self):
        assert theorems.theorem2_friendliness_bound(
            2.0, 0.5
        ) < theorems.theorem2_friendliness_bound(1.0, 0.5)

    def test_bound_decreases_with_beta(self):
        assert theorems.theorem2_friendliness_bound(
            1.0, 0.9
        ) < theorems.theorem2_friendliness_bound(1.0, 0.5)

    def test_full_efficiency_forces_zero_friendliness(self):
        assert theorems.theorem2_friendliness_bound(1.0, 1.0) == 0.0

    def test_holds_checker(self):
        assert theorems.theorem2_holds(1.0, 0.5, 0.9)
        assert not theorems.theorem2_holds(1.0, 0.5, 1.2)
        assert theorems.theorem2_holds(0.0, 0.5, 99.0)  # vacuous

    def test_validation(self):
        with pytest.raises(ValueError):
            theorems.theorem2_friendliness_bound(0.0, 0.5)
        with pytest.raises(ValueError):
            theorems.theorem2_friendliness_bound(1.0, 1.5)


class TestTheorem3:
    def test_far_tighter_than_theorem2(self):
        t2 = theorems.theorem2_friendliness_bound(1.0, 0.8)
        t3 = theorems.theorem3_friendliness_bound(1.0, 0.8, 0.01, 70.0, 100.0)
        assert t3 < t2 / 100

    def test_tightens_with_pipe_size(self):
        small = theorems.theorem3_friendliness_bound(1.0, 0.8, 0.01, 70.0, 100.0)
        large = theorems.theorem3_friendliness_bound(1.0, 0.8, 0.01, 700.0, 100.0)
        assert large < small

    def test_footnote_assumption_enforced(self):
        with pytest.raises(ValueError, match="C \\+ tau > alpha/2"):
            theorems.theorem3_friendliness_bound(10.0, 0.8, 0.01, 1.0, 0.0)

    def test_robustness_range(self):
        with pytest.raises(ValueError):
            theorems.theorem3_friendliness_bound(1.0, 0.8, 0.0, 70.0, 100.0)

    def test_holds_vacuous_without_robustness(self):
        assert theorems.theorem3_holds(1.0, 0.8, 0.0, 99.0, 70.0, 100.0)


class TestTheorem4And5:
    def test_transfer_is_identity(self):
        assert theorems.theorem4_transfer(0.7) == 0.7
        with pytest.raises(ValueError):
            theorems.theorem4_transfer(-0.1)

    def test_aggressiveness_verdict(self):
        verdict = theorems.AggressivenessVerdict("P", "Q", 10.0, 5.0)
        assert verdict.p_more_aggressive
        assert not theorems.AggressivenessVerdict("P", "Q", 5.0, 10.0).p_more_aggressive

    def test_theorem5_bound_is_zero(self):
        assert theorems.theorem5_friendliness_bound() == 0.0

    def test_theorem5_holds(self):
        assert theorems.theorem5_holds(0.9, 0.01)
        assert not theorems.theorem5_holds(0.9, 0.5)
        assert theorems.theorem5_holds(0.0, 0.5)  # vacuous without efficiency
