"""Time-series analysis (repro.analysis.timeseries)."""

import numpy as np
import pytest

from repro.analysis.timeseries import (
    autocorrelation_period,
    find_peaks,
    find_troughs,
    moving_average,
    summarize_sawtooth,
    throughput_latency_points,
)
from repro.model.dynamics import run_homogeneous
from repro.protocols.aimd import AIMD


def sawtooth(peak=100.0, b=0.5, cycles=5, slope=1.0):
    """An ideal AIMD-style sawtooth series."""
    trough = b * peak
    steps = int((peak - trough) / slope)
    one = np.concatenate([np.linspace(trough, peak, steps)])
    return np.concatenate([one] * cycles)


class TestMovingAverage:
    def test_constant_series_unchanged(self):
        series = np.full(10, 4.0)
        np.testing.assert_allclose(moving_average(series, 3), 4.0)

    def test_window_one_is_identity(self):
        series = np.array([1.0, 5.0, 2.0])
        np.testing.assert_array_equal(moving_average(series, 1), series)

    def test_smooths_alternation(self):
        series = np.array([0.0, 10.0] * 20)
        smoothed = moving_average(series, 4)
        assert smoothed[10:30].std() < series[10:30].std()

    def test_validation(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(5), 0)
        with pytest.raises(ValueError):
            moving_average(np.ones((2, 2)), 2)


class TestPeaksTroughs:
    def test_single_peak(self):
        series = np.array([0.0, 1.0, 3.0, 1.0, 0.0])
        np.testing.assert_array_equal(find_peaks(series), [2])

    def test_trough(self):
        series = np.array([3.0, 1.0, 0.5, 1.0, 3.0])
        np.testing.assert_array_equal(find_troughs(series), [2])

    def test_monotone_has_none(self):
        assert find_peaks(np.arange(10.0)).size == 0

    def test_too_short(self):
        assert find_peaks(np.array([1.0, 2.0])).size == 0

    def test_sawtooth_peak_count(self):
        series = sawtooth(cycles=4)
        assert find_peaks(series).size == 3  # interior peaks only


class TestSawtoothSummary:
    def test_ideal_sawtooth_recovered(self):
        series = sawtooth(peak=100.0, b=0.5, cycles=6)
        summary = summarize_sawtooth(series)
        assert summary is not None
        assert summary.mean_peak == pytest.approx(100.0, rel=0.05)
        assert summary.decrease_factor == pytest.approx(0.5, abs=0.05)
        assert summary.convergence_alpha == pytest.approx(2 / 3, abs=0.05)

    def test_flat_series_has_no_cycles(self):
        assert summarize_sawtooth(np.full(100, 5.0)) is None

    def test_real_reno_trace(self, emulab_link):
        trace = run_homogeneous(emulab_link, AIMD(1, 0.5), 2, 3000)
        summary = summarize_sawtooth(trace.tail(0.5).sender_series(0))
        assert summary is not None
        # The extracted decrease factor is Reno's b = 0.5.
        assert summary.decrease_factor == pytest.approx(0.5, abs=0.05)
        assert summary.n_cycles >= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize_sawtooth(np.ones(10), min_cycles=0)


class TestAutocorrelationPeriod:
    def test_recovers_sawtooth_period(self):
        series = sawtooth(peak=100.0, b=0.5, cycles=8, slope=1.0)
        true_period = 50
        period = autocorrelation_period(series)
        assert period == pytest.approx(true_period, abs=2)

    def test_flat_series_none(self):
        assert autocorrelation_period(np.full(100, 3.0)) is None

    def test_short_series_none(self):
        assert autocorrelation_period(np.ones(4)) is None


class TestThroughputLatency:
    def test_bucketing(self):
        windows = np.full(100, 10.0)
        rtts = np.full(100, 0.05)
        points = throughput_latency_points(windows, rtts, bucket=25)
        assert len(points) == 4
        throughput, latency = points[0]
        assert throughput == pytest.approx(200.0)
        assert latency == pytest.approx(0.05)

    def test_nan_windows_skipped(self):
        windows = np.full(50, np.nan)
        rtts = np.full(50, 0.05)
        assert throughput_latency_points(windows, rtts, bucket=25) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            throughput_latency_points(np.ones(10), np.ones(5))
        with pytest.raises(ValueError):
            throughput_latency_points(np.ones(10), np.ones(10), bucket=0)
