"""SimulationTrace series and reductions (repro.model.trace)."""

import numpy as np
import pytest

from repro.model.dynamics import run_homogeneous
from repro.model.trace import SimulationTrace
from repro.protocols.aimd import AIMD


def make_trace(steps=10, n=2, window_value=5.0) -> SimulationTrace:
    return SimulationTrace(
        windows=np.full((steps, n), window_value),
        observed_loss=np.zeros((steps, n)),
        congestion_loss=np.zeros(steps),
        rtts=np.full(steps, 0.042),
        capacities=np.full(steps, 70.0),
        pipe_limits=np.full(steps, 170.0),
        base_rtts=np.full(steps, 0.042),
    )


class TestValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SimulationTrace(
                windows=np.zeros((10, 2)),
                observed_loss=np.zeros((10, 3)),
                congestion_loss=np.zeros(10),
                rtts=np.zeros(10),
                capacities=np.ones(10),
                pipe_limits=np.ones(10),
                base_rtts=np.ones(10),
            )

    def test_scalar_series_must_match_steps(self):
        with pytest.raises(ValueError):
            SimulationTrace(
                windows=np.zeros((10, 2)),
                observed_loss=np.zeros((10, 2)),
                congestion_loss=np.zeros(5),
                rtts=np.zeros(10),
                capacities=np.ones(10),
                pipe_limits=np.ones(10),
                base_rtts=np.ones(10),
            )

    def test_windows_must_be_2d(self):
        with pytest.raises(ValueError):
            SimulationTrace(
                windows=np.zeros(10),
                observed_loss=np.zeros(10),
                congestion_loss=np.zeros(10),
                rtts=np.zeros(10),
                capacities=np.ones(10),
                pipe_limits=np.ones(10),
                base_rtts=np.ones(10),
            )


class TestDerivedSeries:
    def test_total_window_sums_senders(self):
        trace = make_trace(steps=4, n=3, window_value=5.0)
        np.testing.assert_allclose(trace.total_window(), 15.0)

    def test_total_window_ignores_nan(self):
        trace = make_trace(steps=2, n=2, window_value=5.0)
        trace.windows[0, 1] = np.nan
        assert trace.total_window()[0] == pytest.approx(5.0)

    def test_utilization_capped_at_pipe(self):
        trace = make_trace(steps=2, n=2, window_value=500.0)
        # 1000 total, pipe 170, C 70: utilization capped at 170/70.
        assert trace.utilization()[0] == pytest.approx(170.0 / 70.0)

    def test_goodput_formula(self):
        trace = make_trace(steps=1, n=1, window_value=42.0)
        trace.observed_loss[0, 0] = 0.5
        assert trace.goodput()[0, 0] == pytest.approx(42.0 * 0.5 / 0.042)

    def test_rtt_inflation_zero_at_base(self):
        trace = make_trace()
        np.testing.assert_allclose(trace.rtt_inflation(), 0.0)

    def test_loss_events(self):
        trace = make_trace(steps=3)
        trace.congestion_loss[1] = 0.05
        np.testing.assert_array_equal(trace.loss_events(), [False, True, False])

    def test_mean_windows_nan_aware(self):
        trace = make_trace(steps=4, n=2, window_value=10.0)
        trace.windows[:2, 1] = np.nan
        means = trace.mean_windows()
        assert means[0] == pytest.approx(10.0)
        assert means[1] == pytest.approx(10.0)


class TestSlicing:
    def test_tail_half(self):
        trace = make_trace(steps=10)
        assert trace.tail(0.5).steps == 5

    def test_tail_full(self):
        trace = make_trace(steps=10)
        assert trace.tail(1.0).steps == 10

    def test_tail_invalid_fraction(self):
        trace = make_trace()
        with pytest.raises(ValueError):
            trace.tail(0.0)
        with pytest.raises(ValueError):
            trace.tail(1.5)

    def test_slice_bounds_checked(self):
        trace = make_trace(steps=10)
        with pytest.raises(ValueError):
            trace.slice(5, 3)
        with pytest.raises(ValueError):
            trace.slice(0, 99)

    def test_slice_views_data(self):
        trace = make_trace(steps=10)
        part = trace.slice(2, 6)
        assert part.steps == 4
        assert part.windows.base is trace.windows

    def test_sender_series_bounds(self):
        trace = make_trace(n=2)
        with pytest.raises(ValueError):
            trace.sender_series(2)


class TestOnRealRun:
    def test_summary_keys(self, emulab_link):
        trace = run_homogeneous(emulab_link, AIMD(1, 0.5), 2, 400)
        summary = trace.summary()
        for key in ("steps", "senders", "mean_utilization", "mean_loss"):
            assert key in summary

    def test_active_mask_matches_nan(self, emulab_link):
        trace = run_homogeneous(emulab_link, AIMD(1, 0.5), 2, 100)
        assert trace.active_mask().all()

    def test_utilization_reasonable_for_reno(self, emulab_link):
        trace = run_homogeneous(emulab_link, AIMD(1, 0.5), 2, 2000)
        util = trace.tail(0.5).utilization()
        # Reno keeps the link at least half full and never beyond pipe/C.
        assert util.min() > 0.5
        assert util.max() <= emulab_link.pipe_limit / emulab_link.capacity + 1e-9
