"""Unit conversions (repro.model.units)."""

import pytest

from repro.model import units


class TestMbpsToMss:
    def test_20mbps(self):
        # 20 Mbps / (8 * 1500) bytes = 1666.67 MSS/s
        assert units.mbps_to_mss_per_second(20) == pytest.approx(1666.666, rel=1e-3)

    def test_zero_is_allowed(self):
        assert units.mbps_to_mss_per_second(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.mbps_to_mss_per_second(-1)

    def test_custom_mss(self):
        # Halving the MSS doubles the packet rate.
        base = units.mbps_to_mss_per_second(20, mss_bytes=1500)
        assert units.mbps_to_mss_per_second(20, mss_bytes=750) == pytest.approx(2 * base)


class TestRoundTrip:
    @pytest.mark.parametrize("mbps", [0.1, 1, 20, 100, 1000])
    def test_inverse(self, mbps):
        mss = units.mbps_to_mss_per_second(mbps)
        assert units.mss_per_second_to_mbps(mss) == pytest.approx(mbps)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.mss_per_second_to_mbps(-5)


class TestBdp:
    def test_paper_reference_link(self):
        # 20 Mbps at 42 ms RTT: the paper's C = 70 MSS.
        assert units.bdp_mss(20, 42) == pytest.approx(70.0)

    def test_scales_linearly_with_bandwidth(self):
        assert units.bdp_mss(100, 42) == pytest.approx(5 * units.bdp_mss(20, 42))

    def test_scales_linearly_with_rtt(self):
        assert units.bdp_mss(20, 84) == pytest.approx(2 * units.bdp_mss(20, 42))

    def test_zero_rtt_rejected(self):
        with pytest.raises(ValueError):
            units.bdp_mss(20, 0)


class TestTheta:
    def test_half_of_rtt(self):
        assert units.rtt_ms_to_theta_seconds(42) == pytest.approx(0.021)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            units.rtt_ms_to_theta_seconds(-1)
