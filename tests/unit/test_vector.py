"""The 8-dimensional metric vector (repro.core.metrics.vector)."""

import math

import pytest

from repro.core.metrics.vector import LOWER_IS_BETTER, METRIC_ORDER, MetricVector


class TestBasics:
    def test_eight_metrics_in_paper_order(self):
        assert len(METRIC_ORDER) == 8
        assert METRIC_ORDER[0] == "efficiency"
        assert METRIC_ORDER[-1] == "latency_avoidance"

    def test_lower_is_better_axes(self):
        assert LOWER_IS_BETTER == {"loss_avoidance", "latency_avoidance"}

    def test_default_is_all_nan(self):
        vector = MetricVector()
        assert all(math.isnan(v) for v in vector.as_dict().values())

    def test_as_dict_order(self):
        vector = MetricVector(efficiency=0.5)
        assert list(vector.as_dict()) == list(METRIC_ORDER)

    def test_non_numeric_rejected(self):
        with pytest.raises(TypeError):
            MetricVector(efficiency="high")

    def test_frozen(self):
        with pytest.raises(Exception):
            MetricVector().efficiency = 1.0


class TestParetoPoint:
    def test_orientation_flips_lower_is_better(self):
        vector = MetricVector(efficiency=0.8, loss_avoidance=0.01)
        point = vector.as_pareto_point(("efficiency", "loss_avoidance"))
        assert point == [0.8, -0.01]

    def test_full_point_length(self):
        vector = MetricVector(**{name: 0.5 for name in METRIC_ORDER})
        assert len(vector.as_pareto_point()) == 8

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            MetricVector().as_pareto_point(("speed",))


class TestHelpers:
    def test_measured_metrics(self):
        vector = MetricVector(efficiency=0.5, fairness=1.0)
        assert vector.measured_metrics() == ("efficiency", "fairness")

    def test_replace(self):
        vector = MetricVector(efficiency=0.5)
        updated = vector.replace(fairness=0.9)
        assert updated.efficiency == 0.5
        assert updated.fairness == 0.9
        assert math.isnan(vector.fairness)  # original untouched

    def test_replace_unknown_metric(self):
        with pytest.raises(ValueError):
            MetricVector().replace(speed=1.0)

    def test_format_row_handles_special_values(self):
        vector = MetricVector(efficiency=0.5, latency_avoidance=math.inf)
        row = vector.format_row()
        assert "0.500" in row
        assert "inf" in row
        assert "-" in row  # NaN slots
