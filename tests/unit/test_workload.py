"""Finite flows and FCT workloads (repro.packetsim.workload)."""

import math

import pytest

from repro.model.link import Link
from repro.packetsim.workload import (
    FlowSpec,
    WorkloadResult,
    poisson_workload,
    run_workload,
)
from repro.protocols import presets
from repro.protocols.aimd import AIMD


class TestFlowSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlowSpec(start_time=-1.0, size=10, protocol=AIMD(1, 0.5))
        with pytest.raises(ValueError):
            FlowSpec(start_time=0.0, size=0, protocol=AIMD(1, 0.5))


class TestPoissonWorkload:
    def test_deterministic_given_seed(self):
        a = poisson_workload(2.0, 50, 10.0, AIMD(1, 0.5), seed=3)
        b = poisson_workload(2.0, 50, 10.0, AIMD(1, 0.5), seed=3)
        assert [(s.start_time, s.size) for s in a] == [
            (s.start_time, s.size) for s in b
        ]

    def test_arrivals_within_duration(self):
        specs = poisson_workload(5.0, 50, 10.0, AIMD(1, 0.5), seed=1)
        assert specs
        assert all(0 <= s.start_time < 10.0 for s in specs)

    def test_mean_size_approximate(self):
        specs = poisson_workload(50.0, 80, 20.0, AIMD(1, 0.5), seed=2)
        sizes = [s.size for s in specs]
        assert sum(sizes) / len(sizes) == pytest.approx(80, rel=0.3)

    def test_rate_controls_count(self):
        few = poisson_workload(1.0, 50, 20.0, AIMD(1, 0.5), seed=4)
        many = poisson_workload(10.0, 50, 20.0, AIMD(1, 0.5), seed=4)
        assert len(many) > 3 * len(few)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_workload(0.0, 50, 10.0, AIMD(1, 0.5))
        with pytest.raises(ValueError):
            poisson_workload(1.0, 1, 10.0, AIMD(1, 0.5))
        with pytest.raises(ValueError):
            poisson_workload(1.0, 50, 0.0, AIMD(1, 0.5))


class TestFiniteFlows:
    def test_single_flow_completes(self, emulab_link):
        specs = [FlowSpec(0.0, 100, presets.reno())]
        result = run_workload(emulab_link, specs, duration=30.0)
        assert result.completed == 1
        assert result.flows[0].packets_acked >= 100

    def test_fct_scales_with_size(self, emulab_link):
        small = run_workload(
            emulab_link, [FlowSpec(0.0, 20, presets.reno())], duration=30.0
        ).mean_fct()
        large = run_workload(
            emulab_link, [FlowSpec(0.0, 2000, presets.reno())], duration=30.0
        ).mean_fct()
        assert small < large

    def test_fct_at_least_transmission_time(self, emulab_link):
        size = 500
        result = run_workload(
            emulab_link, [FlowSpec(0.0, size, presets.reno())], duration=30.0
        )
        fct = result.mean_fct()
        assert fct >= size / emulab_link.bandwidth

    def test_losses_are_retransmitted(self):
        # A tiny buffer forces drops; the payload must still arrive whole.
        link = Link.from_mbps(10, 42, 5)
        specs = [FlowSpec(0.0, 400, presets.reno())]
        result = run_workload(link, specs, duration=60.0)
        assert result.completed == 1
        assert result.total_retransmissions() > 0
        assert result.flows[0].packets_acked >= 400

    def test_background_traffic_slows_completion(self, emulab_link):
        solo = run_workload(
            emulab_link, [FlowSpec(0.0, 300, presets.reno())], duration=60.0
        ).mean_fct()
        contended = run_workload(
            emulab_link,
            [FlowSpec(0.0, 300, presets.reno())],
            duration=60.0,
            background=[presets.reno()],
        ).mean_fct()
        assert contended > solo

    def test_incomplete_flows_counted(self, emulab_link):
        # A huge transfer cannot finish in a short run.
        result = run_workload(
            emulab_link, [FlowSpec(0.0, 10**7, presets.reno())], duration=2.0
        )
        assert result.incomplete == 1
        assert math.isnan(result.mean_fct())

    def test_validation(self, emulab_link):
        with pytest.raises(ValueError):
            run_workload(emulab_link, [], duration=10.0)
        with pytest.raises(ValueError):
            run_workload(
                emulab_link, [FlowSpec(20.0, 10, presets.reno())], duration=10.0
            )


class TestWorkloadStatistics:
    @pytest.fixture(scope="class")
    def poisson_result(self, ):
        link = Link.from_mbps(20, 42, 100)
        specs = poisson_workload(2.0, 60, 15.0, presets.reno(), seed=7)
        return run_workload(link, specs, duration=60.0)

    def test_most_flows_complete(self, poisson_result):
        assert poisson_result.completed >= 0.9 * len(poisson_result.specs)

    def test_percentiles_ordered(self, poisson_result):
        p50 = poisson_result.percentile_fct(0.5)
        p99 = poisson_result.percentile_fct(0.99)
        assert p50 <= p99

    def test_small_flows_finish_faster(self, poisson_result):
        small, large = poisson_result.fct_by_size(boundary=60)
        if not (math.isnan(small) or math.isnan(large)):
            assert small < large

    def test_percentile_validation(self, poisson_result):
        with pytest.raises(ValueError):
            poisson_result.percentile_fct(1.5)
